"""Tests for the epoch planner state machine and aggregates."""

import pytest

from repro.core.config import MFCConfig
from repro.core.epochs import (
    PLANNERS,
    BisectKnee,
    EpochPlanner,
    GeometricRamp,
    LinearRamp,
    PlannerSpec,
    degradation_aggregate,
    degradation_aggregate_sorted,
    median,
    quantile,
    quantile_sorted,
)
from repro.core.records import EpochLabel, EpochResult, StageOutcome


def make_epoch(crowd, label, degraded):
    return EpochResult(
        index=0,
        label=label,
        crowd_size=crowd,
        clients_used=crowd,
        target_time=0.0,
        degraded=degraded,
    )


def drive(planner, degrade_at=None, degrade_checks=True):
    """Run the planner answering each epoch; returns the epoch trail."""
    trail = []
    while True:
        nxt = planner.next_epoch()
        if nxt is None:
            return trail
        crowd, label = nxt
        if label is EpochLabel.NORMAL:
            degraded = degrade_at is not None and crowd >= degrade_at
        else:
            degraded = degrade_checks
        trail.append((crowd, label, degraded))
        planner.record(make_epoch(crowd, label, degraded))


# -- quantiles -------------------------------------------------------------------


def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5


def test_quantile_bounds():
    values = [float(i) for i in range(11)]
    assert quantile(values, 0.0) == 0.0
    assert quantile(values, 1.0) == 10.0
    assert quantile(values, 0.5) == 5.0


def test_quantile_interpolates():
    assert quantile([0.0, 1.0], 0.25) == pytest.approx(0.25)


def test_quantile_single_value():
    assert quantile([7.0], 0.9) == 7.0


def test_quantile_validation():
    with pytest.raises(ValueError):
        quantile([], 0.5)
    with pytest.raises(ValueError):
        quantile([1.0], 1.5)


def test_quantile_sorted_matches_quantile_on_random_samples():
    import random

    rng = random.Random(7)
    for _ in range(25):
        values = [rng.uniform(-5, 5) for _ in range(rng.randint(1, 40))]
        q = rng.random()
        assert quantile_sorted(sorted(values), q) == quantile(values, q)


def test_sorted_variants_do_not_sort_again(monkeypatch):
    """The per-epoch contract: one sort, then every statistic reads
    the ordered sample without paying another O(n log n)."""
    import repro.core.epochs as epochs_mod

    ordered = sorted([0.4, 0.1, 0.9, 0.3, 0.7])

    def exploding_sorted(*_args, **_kwargs):
        raise AssertionError("sorted() called on an already-ordered sample")

    # shadow the builtin within the module: any hidden re-sort explodes
    monkeypatch.setattr(epochs_mod, "sorted", exploding_sorted, raising=False)
    assert quantile_sorted(ordered, 0.5) == 0.4
    assert degradation_aggregate_sorted(ordered, 0.9) == pytest.approx(
        quantile_sorted(ordered, 0.1)
    )


def test_sorted_variants_validate_like_quantile():
    with pytest.raises(ValueError):
        quantile_sorted([], 0.5)
    with pytest.raises(ValueError):
        quantile_sorted([1.0], 1.5)


def test_degradation_aggregate_sorted_matches_unsorted():
    values = [0.25, 0.05, 0.8, 0.6, 0.1, 0.9, 0.4]
    for fraction in (0.5, 0.9):
        assert degradation_aggregate_sorted(
            sorted(values), fraction
        ) == degradation_aggregate(values, fraction)


def test_degradation_aggregate_median_rule():
    # half the clients saw 0.2s: the median rule statistic is ~0.1+
    values = [0.0] * 5 + [0.2] * 5
    assert degradation_aggregate(values, 0.5) == pytest.approx(0.1)


def test_degradation_aggregate_90pct_rule():
    # only 50% degraded: the 90% rule statistic stays low
    values = [0.0] * 5 + [1.0] * 5
    assert degradation_aggregate(values, 0.9) == pytest.approx(0.0, abs=0.11)
    # 95% degraded: now it crosses
    values = [0.0] + [1.0] * 19
    assert degradation_aggregate(values, 0.9) == pytest.approx(1.0, abs=0.06)


# -- planner -----------------------------------------------------------------------


def cfg(**kw):
    defaults = dict(initial_crowd=5, crowd_step=5, max_crowd=50, min_clients=1)
    defaults.update(kw)
    return MFCConfig(**defaults)


def test_planner_progresses_to_no_stop():
    planner = EpochPlanner(cfg())
    trail = drive(planner, degrade_at=None)
    assert planner.outcome is StageOutcome.NO_STOP
    crowds = [c for c, label, _ in trail]
    assert crowds == [5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
    assert all(label is EpochLabel.NORMAL for _, label, _ in trail)


def test_planner_check_phase_confirms_stop():
    planner = EpochPlanner(cfg())
    trail = drive(planner, degrade_at=25, degrade_checks=True)
    assert planner.outcome is StageOutcome.STOPPED
    assert planner.stopping_crowd_size == 25
    # trigger at 25, then first check epoch (N-1) confirms
    assert trail[-1] == (24, EpochLabel.CHECK_MINUS, True)


def test_planner_check_phase_failure_resumes():
    planner = EpochPlanner(cfg())
    # degrade exactly once at 25; checks all come back clean
    degraded_once = {"done": False}

    trail = []
    while True:
        nxt = planner.next_epoch()
        if nxt is None:
            break
        crowd, label = nxt
        if label is EpochLabel.NORMAL and crowd == 25 and not degraded_once["done"]:
            degraded = True
            degraded_once["done"] = True
        else:
            degraded = False
        trail.append((crowd, label))
        planner.record(make_epoch(crowd, label, degraded))

    assert planner.outcome is StageOutcome.NO_STOP
    labels = [label for _, label in trail]
    assert labels.count(EpochLabel.CHECK_MINUS) == 1
    assert labels.count(EpochLabel.CHECK_REPEAT) == 1
    assert labels.count(EpochLabel.CHECK_PLUS) == 1
    # progression resumed at 30 after the failed check
    crowds = [c for c, label in trail if label is EpochLabel.NORMAL]
    assert crowds == [5, 10, 15, 20, 25, 30, 35, 40, 45, 50]


def test_planner_check_short_circuits_on_first_confirmation():
    planner = EpochPlanner(cfg())
    drive(planner, degrade_at=30, degrade_checks=True)
    check_epochs = [
        label
        for _, label, _ in drive(EpochPlanner(cfg()), degrade_at=30)
        if label is not EpochLabel.NORMAL
    ]
    # only the first check epoch runs when it confirms
    assert check_epochs == [EpochLabel.CHECK_MINUS]


def test_planner_below_significance_progresses_despite_degradation():
    planner = EpochPlanner(cfg(min_significant_crowd=15))
    trail = drive(planner, degrade_at=5, degrade_checks=True)
    # crowds 5 and 10 degraded but are below the 15-client minimum;
    # formal stop happens at 15
    assert planner.outcome is StageOutcome.STOPPED
    assert planner.stopping_crowd_size == 15
    assert planner.earliest_degraded_crowd == 5


def test_planner_records_earliest_degraded_crowd():
    planner = EpochPlanner(cfg())
    drive(planner, degrade_at=20)
    assert planner.earliest_degraded_crowd == 20


def test_planner_check_phase_disabled_stops_immediately():
    planner = EpochPlanner(cfg(check_phase=False))
    trail = drive(planner, degrade_at=25)
    assert planner.outcome is StageOutcome.STOPPED
    assert planner.stopping_crowd_size == 25
    assert all(label is EpochLabel.NORMAL for _, label, _ in trail)


def test_planner_client_supply_caps_crowd():
    planner = EpochPlanner(cfg(max_crowd=500), max_feasible_crowd=23)
    trail = drive(planner, degrade_at=None)
    assert planner.outcome is StageOutcome.NO_STOP
    assert max(c for c, _, _ in trail) <= 23


def test_planner_initial_crowd_capped():
    planner = EpochPlanner(cfg(initial_crowd=30), max_feasible_crowd=10)
    crowd, label = planner.next_epoch()
    assert crowd == 10


def test_planner_record_after_finish_raises():
    planner = EpochPlanner(cfg())
    drive(planner, degrade_at=None)
    with pytest.raises(RuntimeError):
        planner.record(make_epoch(5, EpochLabel.NORMAL, False))


def test_planner_check_crowd_never_below_one():
    planner = EpochPlanner(cfg(initial_crowd=1, crowd_step=1, min_significant_crowd=1))
    nxt = planner.next_epoch()
    planner.record(make_epoch(1, EpochLabel.NORMAL, True))
    crowd, label = planner.next_epoch()
    assert label is EpochLabel.CHECK_MINUS
    assert crowd >= 1


# -- planner strategies -----------------------------------------------------------


def test_registry_names_all_shipped_strategies():
    assert {"linear", "geometric", "bisect"} <= set(PLANNERS)
    assert PLANNERS["linear"] is LinearRamp
    assert PLANNERS["geometric"] is GeometricRamp
    assert PLANNERS["bisect"] is BisectKnee


def test_linear_ramp_is_the_seed_planner():
    """The default strategy must behave exactly like the base planner."""
    for degrade_at in (None, 25, 40):
        a = EpochPlanner(cfg())
        b = LinearRamp(cfg())
        trail_a = drive(a, degrade_at=degrade_at)
        trail_b = drive(b, degrade_at=degrade_at)
        assert trail_a == trail_b
        assert (a.outcome, a.stopping_crowd_size) == (b.outcome, b.stopping_crowd_size)


def test_geometric_ramp_progression():
    planner = GeometricRamp(cfg(max_crowd=500), factor=2.0)
    trail = drive(planner, degrade_at=None)
    crowds = [c for c, _, _ in trail]
    # the final step clamps to the cap: NoStop means the cap was probed
    assert crowds == [5, 10, 20, 40, 80, 160, 320, 500]
    assert planner.outcome is StageOutcome.NO_STOP


def test_geometric_ramp_tests_the_cap_before_no_stop():
    """A knee between the last geometric probe and the cap must be
    found, not skipped: the ramp clamps its final step to the cap."""
    planner = GeometricRamp(cfg(max_crowd=200), factor=2.0)
    drive(planner, degrade_at=170, degrade_checks=True)
    assert planner.outcome is StageOutcome.STOPPED
    assert planner.stopping_crowd_size == 200  # the clamped cap probe


def test_geometric_ramp_stops_via_check_phase():
    planner = GeometricRamp(cfg(max_crowd=500), factor=2.0)
    drive(planner, degrade_at=80, degrade_checks=True)
    assert planner.outcome is StageOutcome.STOPPED
    assert planner.stopping_crowd_size == 80


def test_geometric_factor_validation():
    with pytest.raises(ValueError, match="factor"):
        GeometricRamp(cfg(), factor=1.0)
    with pytest.raises(ValueError, match="growth_factor"):
        BisectKnee(cfg(), growth_factor=0.5)


def test_bisect_finds_the_same_knee_as_linear_in_fewer_epochs():
    for knee in (60, 85, 130):
        config = cfg(max_crowd=200)
        linear = LinearRamp(config)
        bisect = BisectKnee(config)
        linear_trail = drive(linear, degrade_at=knee, degrade_checks=True)
        bisect_trail = drive(bisect, degrade_at=knee, degrade_checks=True)
        assert bisect.outcome is StageOutcome.STOPPED
        # deterministic threshold crowds: bisect lands on the exact knee
        # (the smallest crowd >= degrade_at it probed, at step resolution)
        assert linear.stopping_crowd_size == knee
        assert knee <= bisect.stopping_crowd_size < knee + config.crowd_step
        assert len(bisect_trail) < len(linear_trail)


def test_bisect_no_stop_tests_the_cap_itself():
    planner = BisectKnee(cfg(max_crowd=50))
    trail = drive(planner, degrade_at=None)
    assert planner.outcome is StageOutcome.NO_STOP
    assert max(c for c, _, _ in trail) == 50  # the cap was probed, not skipped


def test_bisect_respects_client_supply_cap():
    planner = BisectKnee(cfg(max_crowd=500), max_feasible_crowd=37)
    trail = drive(planner, degrade_at=None)
    assert planner.outcome is StageOutcome.NO_STOP
    assert max(c for c, _, _ in trail) == 37


def test_bisect_failed_check_reopens_the_bracket():
    """A knee whose confirmation epochs all come back clean is a
    transient: the planner must resume upward and finish NoStop."""
    planner = BisectKnee(cfg(max_crowd=100))
    degraded_once = {"done": False}
    trail = []
    while True:
        nxt = planner.next_epoch()
        if nxt is None:
            break
        crowd, label = nxt
        if label is EpochLabel.NORMAL and crowd >= 40 and not degraded_once["done"]:
            degraded = True
            degraded_once["done"] = True
        else:
            degraded = False
        trail.append((crowd, label))
        planner.record(make_epoch(crowd, label, degraded))
    assert planner.outcome is StageOutcome.NO_STOP
    labels = [label for _, label in trail]
    assert labels.count(EpochLabel.CHECK_MINUS) == 1
    # progression resumed past the false knee up to the cap
    assert max(c for c, _ in trail) == 100


def test_bisect_below_significance_progresses():
    planner = BisectKnee(cfg(min_significant_crowd=15, max_crowd=100))
    trail = drive(planner, degrade_at=5, degrade_checks=True)
    assert planner.outcome is StageOutcome.STOPPED
    # the first significant degraded crowd is the knee
    assert planner.stopping_crowd_size >= 15
    assert planner.earliest_degraded_crowd == 5


# -- PlannerSpec ------------------------------------------------------------------


def test_planner_spec_default_is_linear():
    planner = PlannerSpec().make(cfg())
    assert isinstance(planner, LinearRamp)


def test_planner_spec_passes_params():
    planner = PlannerSpec(name="geometric", params={"factor": 3.0}).make(cfg())
    assert isinstance(planner, GeometricRamp)
    assert planner.factor == 3.0


def test_planner_spec_unknown_name_raises():
    with pytest.raises(ValueError, match="registered"):
        PlannerSpec(name="clairvoyant").validate()


def test_planner_spec_unknown_param_names_fail_validation():
    """A typo'd parameter in a hand-edited world document must fail at
    spec-validation time, not as a TypeError mid-simulation."""
    with pytest.raises(ValueError, match="does not accept"):
        PlannerSpec(name="linear", params={"factor": 2.0}).validate()
    with pytest.raises(ValueError, match="growth_factor"):
        PlannerSpec(name="bisect", params={"growthfactor": 2.0}).validate()
    # correct names pass
    PlannerSpec(name="geometric", params={"factor": 2.0}).validate()


def test_planner_spec_bad_param_values_raise_value_error():
    # constructor-level rejection stays a ValueError (the spec-error
    # contract CLI/build callers catch)
    with pytest.raises(ValueError, match="factor"):
        PlannerSpec(name="geometric", params={"factor": 0.5}).make(cfg())
    with pytest.raises(ValueError, match="invalid parameters"):
        PlannerSpec(name="geometric", params={"factor": "fast"}).make(cfg())


def test_bisect_terminates_when_coordinator_rounds_crowds():
    """MFC-mr rounds each requested crowd up to a requests-per-client
    multiple; a mid-crowd that rounds back up to the bracket top must
    confirm the knee, not re-request the same mid forever."""
    m = 8  # requests per client, > crowd_step
    planner = BisectKnee(cfg(max_crowd=200, crowd_step=5))
    epochs = 0
    while True:
        nxt = planner.next_epoch()
        if nxt is None:
            break
        crowd, label = nxt
        scheduled = -(-crowd // m) * m  # what the coordinator runs
        degraded = scheduled >= 56
        epochs += 1
        assert epochs < 60, "planner failed to terminate"
        planner.record(make_epoch(scheduled, label, degraded))
    assert planner.outcome is StageOutcome.STOPPED
    assert planner.stopping_crowd_size == 56
