"""Tests for the epoch planner state machine and aggregates."""

import pytest

from repro.core.config import MFCConfig
from repro.core.epochs import (
    EpochPlanner,
    degradation_aggregate,
    degradation_aggregate_sorted,
    median,
    quantile,
    quantile_sorted,
)
from repro.core.records import EpochLabel, EpochResult, StageOutcome


def make_epoch(crowd, label, degraded):
    return EpochResult(
        index=0,
        label=label,
        crowd_size=crowd,
        clients_used=crowd,
        target_time=0.0,
        degraded=degraded,
    )


def drive(planner, degrade_at=None, degrade_checks=True):
    """Run the planner answering each epoch; returns the epoch trail."""
    trail = []
    while True:
        nxt = planner.next_epoch()
        if nxt is None:
            return trail
        crowd, label = nxt
        if label is EpochLabel.NORMAL:
            degraded = degrade_at is not None and crowd >= degrade_at
        else:
            degraded = degrade_checks
        trail.append((crowd, label, degraded))
        planner.record(make_epoch(crowd, label, degraded))


# -- quantiles -------------------------------------------------------------------


def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5


def test_quantile_bounds():
    values = [float(i) for i in range(11)]
    assert quantile(values, 0.0) == 0.0
    assert quantile(values, 1.0) == 10.0
    assert quantile(values, 0.5) == 5.0


def test_quantile_interpolates():
    assert quantile([0.0, 1.0], 0.25) == pytest.approx(0.25)


def test_quantile_single_value():
    assert quantile([7.0], 0.9) == 7.0


def test_quantile_validation():
    with pytest.raises(ValueError):
        quantile([], 0.5)
    with pytest.raises(ValueError):
        quantile([1.0], 1.5)


def test_quantile_sorted_matches_quantile_on_random_samples():
    import random

    rng = random.Random(7)
    for _ in range(25):
        values = [rng.uniform(-5, 5) for _ in range(rng.randint(1, 40))]
        q = rng.random()
        assert quantile_sorted(sorted(values), q) == quantile(values, q)


def test_sorted_variants_do_not_sort_again(monkeypatch):
    """The per-epoch contract: one sort, then every statistic reads
    the ordered sample without paying another O(n log n)."""
    import repro.core.epochs as epochs_mod

    ordered = sorted([0.4, 0.1, 0.9, 0.3, 0.7])

    def exploding_sorted(*_args, **_kwargs):
        raise AssertionError("sorted() called on an already-ordered sample")

    # shadow the builtin within the module: any hidden re-sort explodes
    monkeypatch.setattr(epochs_mod, "sorted", exploding_sorted, raising=False)
    assert quantile_sorted(ordered, 0.5) == 0.4
    assert degradation_aggregate_sorted(ordered, 0.9) == pytest.approx(
        quantile_sorted(ordered, 0.1)
    )


def test_sorted_variants_validate_like_quantile():
    with pytest.raises(ValueError):
        quantile_sorted([], 0.5)
    with pytest.raises(ValueError):
        quantile_sorted([1.0], 1.5)


def test_degradation_aggregate_sorted_matches_unsorted():
    values = [0.25, 0.05, 0.8, 0.6, 0.1, 0.9, 0.4]
    for fraction in (0.5, 0.9):
        assert degradation_aggregate_sorted(
            sorted(values), fraction
        ) == degradation_aggregate(values, fraction)


def test_degradation_aggregate_median_rule():
    # half the clients saw 0.2s: the median rule statistic is ~0.1+
    values = [0.0] * 5 + [0.2] * 5
    assert degradation_aggregate(values, 0.5) == pytest.approx(0.1)


def test_degradation_aggregate_90pct_rule():
    # only 50% degraded: the 90% rule statistic stays low
    values = [0.0] * 5 + [1.0] * 5
    assert degradation_aggregate(values, 0.9) == pytest.approx(0.0, abs=0.11)
    # 95% degraded: now it crosses
    values = [0.0] + [1.0] * 19
    assert degradation_aggregate(values, 0.9) == pytest.approx(1.0, abs=0.06)


# -- planner -----------------------------------------------------------------------


def cfg(**kw):
    defaults = dict(initial_crowd=5, crowd_step=5, max_crowd=50, min_clients=1)
    defaults.update(kw)
    return MFCConfig(**defaults)


def test_planner_progresses_to_no_stop():
    planner = EpochPlanner(cfg())
    trail = drive(planner, degrade_at=None)
    assert planner.outcome is StageOutcome.NO_STOP
    crowds = [c for c, label, _ in trail]
    assert crowds == [5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
    assert all(label is EpochLabel.NORMAL for _, label, _ in trail)


def test_planner_check_phase_confirms_stop():
    planner = EpochPlanner(cfg())
    trail = drive(planner, degrade_at=25, degrade_checks=True)
    assert planner.outcome is StageOutcome.STOPPED
    assert planner.stopping_crowd_size == 25
    # trigger at 25, then first check epoch (N-1) confirms
    assert trail[-1] == (24, EpochLabel.CHECK_MINUS, True)


def test_planner_check_phase_failure_resumes():
    planner = EpochPlanner(cfg())
    # degrade exactly once at 25; checks all come back clean
    degraded_once = {"done": False}

    trail = []
    while True:
        nxt = planner.next_epoch()
        if nxt is None:
            break
        crowd, label = nxt
        if label is EpochLabel.NORMAL and crowd == 25 and not degraded_once["done"]:
            degraded = True
            degraded_once["done"] = True
        else:
            degraded = False
        trail.append((crowd, label))
        planner.record(make_epoch(crowd, label, degraded))

    assert planner.outcome is StageOutcome.NO_STOP
    labels = [label for _, label in trail]
    assert labels.count(EpochLabel.CHECK_MINUS) == 1
    assert labels.count(EpochLabel.CHECK_REPEAT) == 1
    assert labels.count(EpochLabel.CHECK_PLUS) == 1
    # progression resumed at 30 after the failed check
    crowds = [c for c, label in trail if label is EpochLabel.NORMAL]
    assert crowds == [5, 10, 15, 20, 25, 30, 35, 40, 45, 50]


def test_planner_check_short_circuits_on_first_confirmation():
    planner = EpochPlanner(cfg())
    drive(planner, degrade_at=30, degrade_checks=True)
    check_epochs = [
        label
        for _, label, _ in drive(EpochPlanner(cfg()), degrade_at=30)
        if label is not EpochLabel.NORMAL
    ]
    # only the first check epoch runs when it confirms
    assert check_epochs == [EpochLabel.CHECK_MINUS]


def test_planner_below_significance_progresses_despite_degradation():
    planner = EpochPlanner(cfg(min_significant_crowd=15))
    trail = drive(planner, degrade_at=5, degrade_checks=True)
    # crowds 5 and 10 degraded but are below the 15-client minimum;
    # formal stop happens at 15
    assert planner.outcome is StageOutcome.STOPPED
    assert planner.stopping_crowd_size == 15
    assert planner.earliest_degraded_crowd == 5


def test_planner_records_earliest_degraded_crowd():
    planner = EpochPlanner(cfg())
    drive(planner, degrade_at=20)
    assert planner.earliest_degraded_crowd == 20


def test_planner_check_phase_disabled_stops_immediately():
    planner = EpochPlanner(cfg(check_phase=False))
    trail = drive(planner, degrade_at=25)
    assert planner.outcome is StageOutcome.STOPPED
    assert planner.stopping_crowd_size == 25
    assert all(label is EpochLabel.NORMAL for _, label, _ in trail)


def test_planner_client_supply_caps_crowd():
    planner = EpochPlanner(cfg(max_crowd=500), max_feasible_crowd=23)
    trail = drive(planner, degrade_at=None)
    assert planner.outcome is StageOutcome.NO_STOP
    assert max(c for c, _, _ in trail) <= 23


def test_planner_initial_crowd_capped():
    planner = EpochPlanner(cfg(initial_crowd=30), max_feasible_crowd=10)
    crowd, label = planner.next_epoch()
    assert crowd == 10


def test_planner_record_after_finish_raises():
    planner = EpochPlanner(cfg())
    drive(planner, degrade_at=None)
    with pytest.raises(RuntimeError):
        planner.record(make_epoch(5, EpochLabel.NORMAL, False))


def test_planner_check_crowd_never_below_one():
    planner = EpochPlanner(cfg(initial_crowd=1, crowd_step=1, min_significant_crowd=1))
    nxt = planner.next_epoch()
    planner.record(make_epoch(1, EpochLabel.NORMAL, True))
    crowd, label = planner.next_epoch()
    assert label is EpochLabel.CHECK_MINUS
    assert crowd >= 1
