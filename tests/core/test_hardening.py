"""Hardened measurement pipeline: partial commits and inference
downgrades.

The contract under test is the paper's validity rule made structural:
a damaged stage keeps everything it observed (never a bare ABORTED
that ate its epochs), and a stage whose sample is too thin, too noisy
or cap-truncated reports *inconclusive* — explicitly not a guess —
rather than a confident verdict.
"""

import pytest

from repro.core.config import MFCConfig
from repro.core.coordinator import Coordinator
from repro.core.inference import (
    ATTRITION_INCONCLUSIVE,
    NOISE_INCONCLUSIVE,
    Provisioning,
    infer_constraints,
)
from repro.core.records import MFCResult, StageOutcome, StageResult
from repro.core.stages import StageKind
from repro.workload.fleet import FleetSpec
from repro.worlds import SCENARIO_PRESETS, WorldSpec

SMALL_CONFIG = MFCConfig(max_crowd=15, crowd_step=5, initial_crowd=5, min_clients=10)
SMALL_FLEET = FleetSpec(n_clients=20, unresponsive_fraction=0.0)


def run_small_world():
    return WorldSpec(
        scenario=SCENARIO_PRESETS["lab"](),
        fleet=SMALL_FLEET,
        config=SMALL_CONFIG,
        seed=5,
        stage_kinds=(StageKind.BASE,),
    ).build().run()


def wrap(stage: StageResult) -> MFCResult:
    return MFCResult(target_name="t", stages={stage.stage_name: stage})


def nostop(**kwargs) -> StageResult:
    return StageResult(
        stage_name="Base",
        outcome=StageOutcome.NO_STOP,
        max_crowd_tested=50,
        **kwargs,
    )


# -- mid-stage failure keeps partial epochs ---------------------------------------


def test_stage_exception_commits_partial_epochs(monkeypatch):
    original = Coordinator._run_epoch
    calls = {"n": 0}

    def exploding(self, *args, **kwargs):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise RuntimeError("injected epoch failure")
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Coordinator, "_run_epoch", exploding)
    result = run_small_world()
    stage = result.stage("Base")
    assert stage.outcome is StageOutcome.ABORTED
    # the first epoch survived the crash of the second
    assert len(stage.epochs) == 1
    assert "injected epoch failure" in stage.reason
    assert "1 epochs committed" in stage.reason
    # the experiment as a whole carried on and still timed the stage
    assert not result.aborted
    assert stage.ended_at >= stage.started_at
    assert infer_constraints(result).verdict_for("Base") is Provisioning.UNKNOWN


# -- inference downgrades ---------------------------------------------------------


def test_clean_stages_keep_their_verdicts():
    assert (
        infer_constraints(wrap(nostop())).verdict_for("Base")
        is Provisioning.ADEQUATE
    )
    stopped = StageResult(
        stage_name="Base",
        outcome=StageOutcome.STOPPED,
        stopping_crowd_size=25,
        max_crowd_tested=30,
    )
    assert (
        infer_constraints(wrap(stopped)).verdict_for("Base")
        is Provisioning.CONSTRAINED
    )


@pytest.mark.parametrize(
    "annotations,needle",
    [
        (
            {"max_missing_fraction": ATTRITION_INCONCLUSIVE},
            "lost",
        ),
        (
            {"signal_noise_fraction": NOISE_INCONCLUSIVE},
            "noise",
        ),
        (
            {"truncated_crowd_cap": 20},
            "attrition cut the feasible crowd",
        ),
    ],
)
def test_annotations_downgrade_to_inconclusive(annotations, needle):
    report = infer_constraints(wrap(nostop(**annotations)))
    assert report.verdict_for("Base") is Provisioning.INCONCLUSIVE
    assert any(needle in d for d in report.diagnoses), report.diagnoses


def test_downgrade_thresholds_are_not_hair_triggers():
    below = nostop(
        max_missing_fraction=ATTRITION_INCONCLUSIVE * 0.9,
        signal_noise_fraction=NOISE_INCONCLUSIVE * 0.9,
    )
    assert infer_constraints(wrap(below)).verdict_for("Base") is (
        Provisioning.ADEQUATE
    )


def test_truncated_cap_does_not_taint_a_confirmed_stop():
    # a confirmed stop is evidence regardless of where the cap ended up
    stopped = StageResult(
        stage_name="Base",
        outcome=StageOutcome.STOPPED,
        stopping_crowd_size=25,
        max_crowd_tested=30,
        truncated_crowd_cap=30,
    )
    assert (
        infer_constraints(wrap(stopped)).verdict_for("Base")
        is Provisioning.CONSTRAINED
    )


def test_clean_hardened_run_leaves_annotations_at_zero():
    import dataclasses

    config = dataclasses.replace(SMALL_CONFIG, hardening=True)
    result = WorldSpec(
        scenario=SCENARIO_PRESETS["lab"](),
        fleet=SMALL_FLEET,
        config=config,
        seed=5,
        stage_kinds=(StageKind.BASE,),
    ).build().run()
    stage = result.stage("Base")
    assert stage.invalid_epochs == 0
    assert stage.quarantined_clients == 0
    assert stage.truncated_crowd_cap is None
