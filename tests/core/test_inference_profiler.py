"""Tests for constraint inference, the profiler and records."""

import pytest

from repro.content.site import SiteContentBuilder, minimal_site
from repro.core.inference import Provisioning, infer_constraints
from repro.core.profiler import ProfilerSettings, profile_site
from repro.core.records import (
    EpochLabel,
    EpochResult,
    MFCResult,
    StageOutcome,
    StageResult,
)
from repro.core.stages import StageKind, build_stage, standard_stages
from repro.server.http import Method

import random


def stage_result(name, outcome, stopping=None):
    return StageResult(
        stage_name=name,
        outcome=outcome,
        stopping_crowd_size=stopping,
        started_at=0.0,
        ended_at=100.0,
    )


def result_with(base=None, query=None, large=None):
    result = MFCResult(target_name="t", live_clients=60)
    if base:
        result.stages[StageKind.BASE.value] = base
    if query:
        result.stages[StageKind.SMALL_QUERY.value] = query
    if large:
        result.stages[StageKind.LARGE_OBJECT.value] = large
    return result


# -- inference -------------------------------------------------------------------


def test_verdicts_map_outcomes():
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 20),
        query=stage_result("SmallQuery", StageOutcome.NO_STOP),
        large=stage_result("LargeObject", StageOutcome.SKIPPED),
    )
    report = infer_constraints(result)
    assert report.verdict_for("Base") is Provisioning.CONSTRAINED
    assert report.verdict_for("SmallQuery") is Provisioning.ADEQUATE
    assert report.verdict_for("LargeObject") is Provisioning.UNKNOWN


def test_univ3_video_diagnosis():
    """Base stops, Large Object doesn't → request handling verdict."""
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 90),
        large=stage_result("LargeObject", StageOutcome.NO_STOP),
    )
    report = infer_constraints(result)
    assert any("request handling, not access bandwidth" in d for d in report.diagnoses)


def test_ddos_backend_diagnosis():
    result = result_with(
        query=stage_result("SmallQuery", StageOutcome.STOPPED, 30),
        large=stage_result("LargeObject", StageOutcome.NO_STOP),
    )
    report = infer_constraints(result)
    assert any("application-level DDoS" in d for d in report.diagnoses)


def test_univ2_serialization_diagnosis():
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 150),
        query=stage_result("SmallQuery", StageOutcome.STOPPED, 130),
        large=stage_result("LargeObject", StageOutcome.STOPPED, 110),
    )
    report = infer_constraints(result)
    assert any("serialization" in d for d in report.diagnoses)


def test_no_serialization_diagnosis_when_sizes_differ():
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 20),
        query=stage_result("SmallQuery", StageOutcome.STOPPED, 130),
        large=stage_result("LargeObject", StageOutcome.STOPPED, 110),
    )
    report = infer_constraints(result)
    assert not any("serialization" in d for d in report.diagnoses)


def test_ddos_order_most_vulnerable_first():
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 50),
        query=stage_result("SmallQuery", StageOutcome.STOPPED, 10),
        large=stage_result("LargeObject", StageOutcome.NO_STOP),
    )
    report = infer_constraints(result)
    assert report.ddos_vulnerability_order[0] == "back-end data processing"
    assert "network access bandwidth" not in report.ddos_vulnerability_order


def test_aborted_result_reported():
    result = MFCResult(target_name="t", aborted=True, abort_reason="only 12 clients")
    report = infer_constraints(result)
    assert any("aborted" in d for d in report.diagnoses)
    assert "aborted" in report.summary() or "12 clients" in report.summary()


def test_summary_renders_all_parts():
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 20),
        large=stage_result("LargeObject", StageOutcome.NO_STOP),
    )
    text = infer_constraints(result).summary()
    assert "http request handling" in text
    assert "stops at 20" in text
    assert "no stop observed" in text


# -- records -----------------------------------------------------------------------


def test_stage_describe_formats():
    stopped = stage_result("Base", StageOutcome.STOPPED, 25)
    assert stopped.describe() == "25"
    nostop = stage_result("Base", StageOutcome.NO_STOP)
    nostop.epochs.append(
        EpochResult(
            index=1, label=EpochLabel.NORMAL, crowd_size=55,
            clients_used=55, target_time=0.0,
        )
    )
    assert nostop.describe() == "NoStop (55)"
    assert stage_result("x", StageOutcome.SKIPPED).describe() == "skipped"


def test_mfc_result_summary():
    result = result_with(base=stage_result("Base", StageOutcome.STOPPED, 25))
    text = result.summary()
    assert "Base" in text and "25" in text


def test_mfc_result_aborted_summary():
    result = MFCResult(target_name="t", aborted=True, abort_reason="too few")
    assert "ABORTED" in result.summary()


# -- stages / profiler -----------------------------------------------------------


def test_standard_stages_full_site():
    profile = profile_site(minimal_site())
    stages = standard_stages(profile)
    kinds = [s.kind for s in stages]
    assert kinds == [StageKind.BASE, StageKind.SMALL_QUERY, StageKind.LARGE_OBJECT]


def test_base_stage_head_method():
    profile = profile_site(minimal_site())
    base = build_stage(StageKind.BASE, profile)
    assert base.method is Method.HEAD
    assert base.degradation_quantile == 0.5
    assert base.object_for(0) == profile.base_page


def test_large_object_stage_same_object_for_all():
    profile = profile_site(minimal_site())
    stage = build_stage(StageKind.LARGE_OBJECT, profile)
    assert stage.degradation_quantile == 0.9
    assert stage.object_for(0) == stage.object_for(17)


def test_small_query_unique_assignment():
    profile = profile_site(minimal_site(n_unique_queries=10))
    stage = build_stage(StageKind.SMALL_QUERY, profile)
    paths = {stage.object_for(i) for i in range(10)}
    assert len(paths) == 10


def test_stage_skipped_without_objects():
    profile = profile_site(minimal_site(large_object_bytes=10_000))
    assert build_stage(StageKind.LARGE_OBJECT, profile) is None


def test_profile_site_respects_budget():
    site = SiteContentBuilder(rng=random.Random(1)).build()
    profile = profile_site(site, ProfilerSettings(max_objects=5, max_depth=2))
    total = sum(len(v) for v in profile.by_class.values())
    assert total <= 5


def test_profiler_settings_validation():
    with pytest.raises(ValueError):
        profile_site(minimal_site(), ProfilerSettings(max_objects=0))
