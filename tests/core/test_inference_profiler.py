"""Tests for constraint inference, the profiler and records."""

import pytest

from repro.content.site import SiteContentBuilder, minimal_site
from repro.core.inference import (
    SUBSYSTEM_BY_STAGE,
    Provisioning,
    infer_constraints,
    subsystem_for,
)
from repro.core.profiler import ProfilerSettings, profile_site
from repro.core.records import (
    EpochLabel,
    EpochResult,
    MFCResult,
    StageOutcome,
    StageResult,
)
from repro.core.stages import StageKind, build_stage, standard_stages
from repro.server.http import Method

import random


def stage_result(name, outcome, stopping=None):
    return StageResult(
        stage_name=name,
        outcome=outcome,
        stopping_crowd_size=stopping,
        started_at=0.0,
        ended_at=100.0,
    )


def result_with(base=None, query=None, large=None):
    result = MFCResult(target_name="t", live_clients=60)
    if base:
        result.stages[StageKind.BASE.value] = base
    if query:
        result.stages[StageKind.SMALL_QUERY.value] = query
    if large:
        result.stages[StageKind.LARGE_OBJECT.value] = large
    return result


# -- inference -------------------------------------------------------------------


def test_verdicts_map_outcomes():
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 20),
        query=stage_result("SmallQuery", StageOutcome.NO_STOP),
        large=stage_result("LargeObject", StageOutcome.SKIPPED),
    )
    report = infer_constraints(result)
    assert report.verdict_for("Base") is Provisioning.CONSTRAINED
    assert report.verdict_for("SmallQuery") is Provisioning.ADEQUATE
    assert report.verdict_for("LargeObject") is Provisioning.UNKNOWN


def test_univ3_video_diagnosis():
    """Base stops, Large Object doesn't → request handling verdict."""
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 90),
        large=stage_result("LargeObject", StageOutcome.NO_STOP),
    )
    report = infer_constraints(result)
    assert any("request handling, not access bandwidth" in d for d in report.diagnoses)


def test_ddos_backend_diagnosis():
    result = result_with(
        query=stage_result("SmallQuery", StageOutcome.STOPPED, 30),
        large=stage_result("LargeObject", StageOutcome.NO_STOP),
    )
    report = infer_constraints(result)
    assert any("application-level DDoS" in d for d in report.diagnoses)


def test_univ2_serialization_diagnosis():
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 150),
        query=stage_result("SmallQuery", StageOutcome.STOPPED, 130),
        large=stage_result("LargeObject", StageOutcome.STOPPED, 110),
    )
    report = infer_constraints(result)
    assert any("serialization" in d for d in report.diagnoses)


def test_no_serialization_diagnosis_when_sizes_differ():
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 20),
        query=stage_result("SmallQuery", StageOutcome.STOPPED, 130),
        large=stage_result("LargeObject", StageOutcome.STOPPED, 110),
    )
    report = infer_constraints(result)
    assert not any("serialization" in d for d in report.diagnoses)


def test_ddos_order_most_vulnerable_first():
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 50),
        query=stage_result("SmallQuery", StageOutcome.STOPPED, 10),
        large=stage_result("LargeObject", StageOutcome.NO_STOP),
    )
    report = infer_constraints(result)
    assert report.ddos_vulnerability_order[0] == "back-end data processing"
    assert "network access bandwidth" not in report.ddos_vulnerability_order


def test_aborted_result_reported():
    result = MFCResult(target_name="t", aborted=True, abort_reason="only 12 clients")
    report = infer_constraints(result)
    assert any("aborted" in d for d in report.diagnoses)
    assert "aborted" in report.summary() or "12 clients" in report.summary()


def test_summary_renders_all_parts():
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 20),
        large=stage_result("LargeObject", StageOutcome.NO_STOP),
    )
    text = infer_constraints(result).summary()
    assert "http request handling" in text
    assert "stops at 20" in text
    assert "no stop observed" in text


# -- verdict branches, incl. the new stage→resource mappings -----------------------


@pytest.mark.parametrize("outcome,expected", [
    (StageOutcome.STOPPED, Provisioning.CONSTRAINED),
    (StageOutcome.NO_STOP, Provisioning.ADEQUATE),
    (StageOutcome.SKIPPED, Provisioning.UNKNOWN),
    (StageOutcome.ABORTED, Provisioning.UNKNOWN),
])
def test_every_outcome_maps_to_a_verdict(outcome, expected):
    result = MFCResult(target_name="t", live_clients=60)
    stopping = 20 if outcome is StageOutcome.STOPPED else None
    result.stages["Base"] = stage_result("Base", outcome, stopping)
    report = infer_constraints(result)
    assert report.verdict_for("Base") is expected
    assert report.stopping_sizes["Base"] == stopping


def test_unmeasured_stage_is_unknown():
    report = infer_constraints(MFCResult(target_name="t", live_clients=60))
    assert report.verdict_for("Base") is Provisioning.UNKNOWN


def test_new_stages_produce_verdicts_with_registry_resources():
    result = MFCResult(target_name="t", live_clients=60)
    result.stages["Upload"] = stage_result("Upload", StageOutcome.STOPPED, 15)
    result.stages["ConnChurn"] = stage_result("ConnChurn", StageOutcome.NO_STOP)
    result.stages["CacheBust"] = stage_result("CacheBust", StageOutcome.STOPPED, 30)
    report = infer_constraints(result)
    assert report.verdict_for("Upload") is Provisioning.CONSTRAINED
    assert report.verdict_for("ConnChurn") is Provisioning.ADEQUATE
    assert report.verdict_for("CacheBust") is Provisioning.CONSTRAINED
    text = report.summary()
    assert "back-end write path" in text
    assert "connection handling (accept/FD)" in text
    assert "storage (disk) subsystem" in text
    # DDoS ranking speaks sub-system language for new stages too
    assert report.ddos_vulnerability_order[0] == "back-end write path"


def test_subsystem_mapping_comes_from_the_registry():
    assert subsystem_for("Base") == "http request handling"
    assert subsystem_for("Upload") == "back-end write path"
    assert subsystem_for("SomethingCustom") == "SomethingCustom"
    assert SUBSYSTEM_BY_STAGE["CacheBust"] == "storage (disk) subsystem"
    assert SUBSYSTEM_BY_STAGE["ConnChurn"] == "connection handling (accept/FD)"


def test_subsystem_table_sees_late_registered_stages(monkeypatch):
    """The module-level table is a live registry view, not an
    import-time snapshot: a stage registered afterwards appears."""
    import repro.core.inference as inference
    from repro.core.stages import STAGES, ProbeStage
    from repro.server.http import Method

    monkeypatch.setitem(
        STAGES,
        "LateStage",
        ProbeStage("LateStage", "late resource", Method.GET, 0.5,
                   source="base-page"),
    )
    assert inference.SUBSYSTEM_BY_STAGE["LateStage"] == "late resource"
    assert subsystem_for("LateStage") == "late resource"
    with pytest.raises(AttributeError):
        inference.NOT_A_THING


def test_cache_bust_vs_large_object_diagnosis():
    result = result_with(
        large=stage_result("LargeObject", StageOutcome.NO_STOP),
    )
    result.stages["CacheBust"] = stage_result("CacheBust", StageOutcome.STOPPED, 25)
    report = infer_constraints(result)
    assert any("storage subsystem" in d for d in report.diagnoses)


def test_conn_churn_vs_base_diagnosis():
    result = result_with(
        base=stage_result("Base", StageOutcome.NO_STOP),
    )
    result.stages["ConnChurn"] = stage_result("ConnChurn", StageOutcome.STOPPED, 20)
    report = infer_constraints(result)
    assert any("accept/FD path" in d for d in report.diagnoses)


def test_upload_vs_small_query_diagnosis():
    result = result_with(
        query=stage_result("SmallQuery", StageOutcome.NO_STOP),
    )
    result.stages["Upload"] = stage_result("Upload", StageOutcome.STOPPED, 10)
    report = infer_constraints(result)
    assert any("write path" in d for d in report.diagnoses)


def test_new_diagnoses_silent_without_their_stages():
    """Three-stage paper runs must read exactly as before."""
    result = result_with(
        base=stage_result("Base", StageOutcome.STOPPED, 20),
        query=stage_result("SmallQuery", StageOutcome.NO_STOP),
        large=stage_result("LargeObject", StageOutcome.NO_STOP),
    )
    report = infer_constraints(result)
    for diagnosis in report.diagnoses:
        assert "write path" not in diagnosis
        assert "accept/FD" not in diagnosis
        assert "storage subsystem" not in diagnosis


# -- records -----------------------------------------------------------------------


def test_stage_describe_formats():
    stopped = stage_result("Base", StageOutcome.STOPPED, 25)
    assert stopped.describe() == "25"
    nostop = stage_result("Base", StageOutcome.NO_STOP)
    nostop.epochs.append(
        EpochResult(
            index=1, label=EpochLabel.NORMAL, crowd_size=55,
            clients_used=55, target_time=0.0,
        )
    )
    assert nostop.describe() == "NoStop (55)"
    assert stage_result("x", StageOutcome.SKIPPED).describe() == "skipped"


def test_mfc_result_summary():
    result = result_with(base=stage_result("Base", StageOutcome.STOPPED, 25))
    text = result.summary()
    assert "Base" in text and "25" in text


def test_mfc_result_aborted_summary():
    result = MFCResult(target_name="t", aborted=True, abort_reason="too few")
    assert "ABORTED" in result.summary()


# -- stages / profiler -----------------------------------------------------------


def test_standard_stages_full_site():
    profile = profile_site(minimal_site())
    stages = standard_stages(profile)
    kinds = [s.kind for s in stages]
    assert kinds == [StageKind.BASE, StageKind.SMALL_QUERY, StageKind.LARGE_OBJECT]


def test_base_stage_head_method():
    profile = profile_site(minimal_site())
    base = build_stage(StageKind.BASE, profile)
    assert base.method is Method.HEAD
    assert base.degradation_quantile == 0.5
    assert base.object_for(0) == profile.base_page


def test_large_object_stage_same_object_for_all():
    profile = profile_site(minimal_site())
    stage = build_stage(StageKind.LARGE_OBJECT, profile)
    assert stage.degradation_quantile == 0.9
    assert stage.object_for(0) == stage.object_for(17)


def test_small_query_unique_assignment():
    profile = profile_site(minimal_site(n_unique_queries=10))
    stage = build_stage(StageKind.SMALL_QUERY, profile)
    paths = {stage.object_for(i) for i in range(10)}
    assert len(paths) == 10


def test_stage_skipped_without_objects():
    profile = profile_site(minimal_site(large_object_bytes=10_000))
    assert build_stage(StageKind.LARGE_OBJECT, profile) is None


def test_profile_site_respects_budget():
    site = SiteContentBuilder(rng=random.Random(1)).build()
    profile = profile_site(site, ProfilerSettings(max_objects=5, max_depth=2))
    total = sum(len(v) for v in profile.by_class.values())
    assert total <= 5


def test_profiler_settings_validation():
    with pytest.raises(ValueError):
        profile_site(minimal_site(), ProfilerSettings(max_objects=0))
