"""Tests for the probe-stage registry and stage plans."""

import pytest

from repro.content.site import minimal_site
from repro.core.profiler import profile_site
from repro.core.stages import (
    CACHE_BUST,
    DEFAULT_STAGE_NAMES,
    ROUND_ROBIN,
    SHARED,
    STAGES,
    UNIQUE,
    ProbeStage,
    StageKind,
    StagePlan,
    build_stage,
    register_stage,
    stage_named,
    stages_named,
    standard_stages,
    validate_stage_names,
)
from repro.server.http import CACHE_BUST_MARKER, Method


def full_profile():
    return profile_site(minimal_site(n_unique_queries=10))


# -- registry -------------------------------------------------------------------


def test_registry_contains_paper_and_new_stages():
    assert set(DEFAULT_STAGE_NAMES) == {"Base", "SmallQuery", "LargeObject"}
    assert {"Base", "SmallQuery", "LargeObject", "Upload", "ConnChurn",
            "CacheBust"} <= set(STAGES)
    # registration order starts with the paper's sequence
    assert list(STAGES)[:3] == list(DEFAULT_STAGE_NAMES)


def test_every_registered_stage_declares_a_resource():
    for stage in STAGES.values():
        assert stage.resource
        assert stage.description


def test_stage_named_unknown_raises_with_listing():
    with pytest.raises(ValueError, match="registered"):
        stage_named("Teleport")
    with pytest.raises(ValueError, match="Teleport"):
        validate_stage_names(["Base", "Teleport"])


def test_register_stage_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_stage(STAGES["Base"])


def test_probe_stage_validation():
    with pytest.raises(ValueError, match="source"):
        ProbeStage("X", "r", Method.GET, 0.5, source="moon-rocks")
    with pytest.raises(ValueError, match="assignment"):
        ProbeStage("X", "r", Method.GET, 0.5, source="base-page",
                   assignment="psychic")
    with pytest.raises(ValueError, match="quantile"):
        ProbeStage("X", "r", Method.GET, 1.5, source="base-page")
    with pytest.raises(ValueError, match="connections"):
        ProbeStage("X", "r", Method.GET, 0.5, source="base-page",
                   connections=0)
    with pytest.raises(ValueError, match="body_bytes"):
        ProbeStage("X", "r", Method.POST, 0.5, source="base-page",
                   body_bytes=-1.0)


# -- seed-stage byte-compatibility -----------------------------------------------


def test_standard_stages_match_seed_recipes():
    profile = full_profile()
    plans = standard_stages(profile)
    assert [p.name for p in plans] == ["Base", "SmallQuery", "LargeObject"]
    base, query, large = plans
    assert base.method is Method.HEAD
    assert base.degradation_quantile == 0.5
    assert base.object_paths == (profile.base_page,)
    assert query.method is Method.GET
    assert query.object_paths == tuple(o.path for o in profile.small_queries)
    assert large.method is Method.GET
    assert large.degradation_quantile == 0.9
    assert large.object_paths == (profile.large_objects[0].path,)
    # none of the paper stages carries a body or churns connections
    assert all(p.body_bytes == 0.0 and p.connections == 1 for p in plans)


def test_build_stage_equals_registry_plan():
    profile = full_profile()
    for kind in StageKind:
        assert build_stage(kind, profile) == STAGES[kind.value].plan(profile)


def test_build_stage_rejects_non_kinds():
    with pytest.raises(ValueError, match="unknown stage kind"):
        build_stage("Base", full_profile())


def test_stage_plan_kind_maps_back_to_legacy_enum():
    profile = full_profile()
    assert build_stage(StageKind.BASE, profile).kind is StageKind.BASE
    assert STAGES["Upload"].plan(profile).kind is None


# -- new stage recipes -----------------------------------------------------------


def test_upload_stage_posts_body_to_dynamic_endpoint():
    profile = full_profile()
    plan = STAGES["Upload"].plan(profile)
    assert plan.method is Method.POST
    assert plan.body_bytes == 64 * 1024.0
    # shared write endpoint: the cheapest small query
    assert plan.object_paths == (profile.small_queries[0].path,)
    assert plan.object_for(0) == plan.object_for(9)


def test_upload_skipped_without_dynamic_endpoint():
    profile = profile_site(minimal_site())
    profile.small_queries.clear()
    assert STAGES["Upload"].plan(profile) is None


def test_conn_churn_stage_multiplies_connections():
    plan = STAGES["ConnChurn"].plan(full_profile())
    assert plan.method is Method.HEAD
    assert plan.connections == 4
    assert plan.object_paths == (full_profile().base_page,)


def test_cache_bust_stage_unique_paths_per_client():
    profile = full_profile()
    plan = STAGES["CacheBust"].plan(profile)
    large = profile.large_objects[0].path
    paths = {plan.object_for(i) for i in range(50)}
    assert len(paths) == 50
    assert all(p.startswith(large + CACHE_BUST_MARKER) for p in paths)


def test_cache_bust_skipped_without_large_objects():
    profile = profile_site(minimal_site(large_object_bytes=10_000))
    assert STAGES["CacheBust"].plan(profile) is None


def test_stages_named_preserves_order_and_skips_ineligible():
    profile = profile_site(minimal_site(large_object_bytes=10_000))
    plans = stages_named(("CacheBust", "ConnChurn", "Base"), profile)
    assert [p.name for p in plans] == ["ConnChurn", "Base"]


# -- object assignment (incl. the strict-unique error) ----------------------------


def plan_with(assignment, paths=("/a", "/b", "/c")):
    return StagePlan(
        name="T",
        method=Method.GET,
        degradation_quantile=0.5,
        object_paths=tuple(paths),
        assignment=assignment,
    )


def test_shared_assignment_always_first_path():
    plan = plan_with(SHARED)
    assert plan.object_for(0) == plan.object_for(17) == "/a"


def test_round_robin_wraps_like_the_paper_fallback():
    plan = plan_with(ROUND_ROBIN)
    assert [plan.object_for(i) for i in range(4)] == ["/a", "/b", "/c", "/a"]


def test_unique_assignment_raises_instead_of_wrapping():
    """The satellite fix: a stage that *requires* unique objects must
    fail loudly when the pool is shorter than the crowd, not silently
    hand two clients the same path."""
    plan = plan_with(UNIQUE)
    assert [plan.object_for(i) for i in range(3)] == ["/a", "/b", "/c"]
    with pytest.raises(ValueError) as exc:
        plan.object_for(3)
    message = str(exc.value)
    assert "unique" in message and "3 path(s)" in message
    assert "client index 3" in message


def test_empty_pool_raises_for_every_assignment():
    for assignment in (SHARED, ROUND_ROBIN, UNIQUE, CACHE_BUST):
        with pytest.raises(ValueError, match="no objects"):
            plan_with(assignment, paths=()).object_for(0)


def test_cache_bust_assignment_suffixes_the_shared_path():
    plan = plan_with(CACHE_BUST)
    assert plan.object_for(5) == f"/a{CACHE_BUST_MARKER}5"
