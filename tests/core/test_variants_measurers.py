"""Tests for the MFC-mr / staggered variants and the measurer extension."""

import pytest

from repro.core.config import MFCConfig
from repro.core.measurers import Measurer
from repro.core.runner import MFCRunner
from repro.core.stages import StageKind
from repro.core.variants import mfc_mr_config, staggered_config
from repro.server.http import Method, Status
from repro.server.presets import qtnp_server
from repro.workload.fleet import FleetSpec

FLEET = FleetSpec(n_clients=55, unresponsive_fraction=0.0)


def test_mfc_mr_doubles_requests_per_epoch():
    config = mfc_mr_config(
        MFCConfig(min_clients=50, initial_crowd=10, crowd_step=10),
        requests_per_client=2,
        max_crowd=20,
        threshold_s=1e6,  # sweep: never stop
    )
    runner = MFCRunner.build(
        qtnp_server(), fleet_spec=FLEET, config=config,
        stage_kinds=[StageKind.BASE], seed=8,
    )
    result = runner.run()
    stage = result.stage(StageKind.BASE.value)
    first = stage.epochs[0]
    # 10 requests from 5 clients
    assert first.crowd_size == 10
    assert first.clients_used == 5
    # both of a client's parallel requests report
    per_client = {}
    for report in first.reports:
        per_client[report.client_id] = per_client.get(report.client_id, 0) + 1
    assert set(per_client.values()) == {2}


def test_staggered_arrivals_spread_at_server():
    config = staggered_config(
        MFCConfig(min_clients=50, initial_crowd=20, crowd_step=20,
                  max_crowd=20, threshold_s=1e6),
        interval_s=0.250,
    )
    runner = MFCRunner.build(
        qtnp_server(), fleet_spec=FLEET, config=config,
        stage_kinds=[StageKind.BASE], seed=9,
    )
    result = runner.run()
    stage = result.stage(StageKind.BASE.value)
    epoch = stage.epochs[0]
    log = runner.server.access_log
    window = log.mfc_records(
        log.in_window(epoch.target_time - 1.0, epoch.target_time + 20.0)
    )
    offsets = log.arrival_offsets(window)
    # 20 arrivals, one every 250 ms → ~4.75 s total spread
    assert len(offsets) == 20
    assert offsets[-1] > 3.5
    gaps = [b - a for a, b in zip(offsets, offsets[1:])]
    assert 0.1 < sum(gaps) / len(gaps) < 0.5


def test_staggered_softens_degradation():
    """A server that folds under a synchronized burst absorbs the same
    volume staggered (the §6 request-shaping insight)."""
    base_cfg = MFCConfig(min_clients=50, max_crowd=40, threshold_s=0.100)

    def stop_size(config, seed=10):
        runner = MFCRunner.build(
            qtnp_server(), fleet_spec=FLEET, config=config,
            stage_kinds=[StageKind.BASE], seed=seed,
        )
        stage = runner.run().stage(StageKind.BASE.value)
        return stage.stopping_crowd_size

    synchronized = stop_size(base_cfg)
    staggered = stop_size(staggered_config(base_cfg, interval_s=0.200))
    assert synchronized is not None
    assert staggered is None or staggered > synchronized


def test_measurer_samples_response_times():
    runner = MFCRunner.build(
        qtnp_server(), fleet_spec=FLEET,
        config=MFCConfig(min_clients=50, max_crowd=15),
        stage_kinds=[StageKind.BASE], seed=11,
    )
    measurer = Measurer(
        runner.sim,
        runner.topology.clients[0],
        runner.service,
        MFCConfig(),
        path="/index.html",
        method=Method.HEAD,
    )
    # stay within the experiment's lifetime (runner.run returns when
    # the coordinator finishes)
    measurer.measure_at([1.0, 30.0, 60.0])
    runner.run()
    assert len(measurer.samples) == 3
    assert all(s.status is Status.OK for s in measurer.samples)
    assert measurer.baseline() is not None
    assert len(measurer.series()) == 3


def test_measurer_observes_cross_resource_impact():
    """A query-probing measurer sees degradation while a Large Object
    crowd saturates a narrow link (the §6 correlation question)."""
    from repro.server.presets import Scenario, univ1_server

    scenario = univ1_server().with_background(0.0)
    runner = MFCRunner.build(
        scenario,
        fleet_spec=FleetSpec(n_clients=55, unresponsive_fraction=0.0),
        config=MFCConfig(min_clients=50, max_crowd=40, threshold_s=1e6),
        stage_kinds=[StageKind.LARGE_OBJECT],
        seed=12,
    )
    measurer = Measurer(
        runner.sim,
        runner.topology.clients[-1],
        runner.service,
        MFCConfig(),
        path="/index.html",
        method=Method.GET,
    )
    # one quiet baseline sample, then samples throughout the experiment
    measurer.measure_at([0.5] + [120.0 + 30.0 * i for i in range(8)])
    runner.run()
    baseline = measurer.baseline()
    peak = max(s.response_time_s for s in measurer.samples)
    assert peak > baseline  # the crowd's load is visible to the measurer
