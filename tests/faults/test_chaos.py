"""Chaos harness: grid planning, the ok-rule, and the quick grid.

The quick grid run here is the same invariant CI's chaos-smoke job
asserts: a faulted experiment may abort or come back inconclusive,
but never silently flips a verdict.
"""

import pytest

from repro.core.records import StageOutcome, StageResult
from repro.faults.chaos import (
    QUICK_FAULTS,
    QUICK_SCENARIOS,
    _cap_boundary,
    chaos_grid,
    format_report,
    plan_chaos_jobs,
)


def stage(outcome, stop=None, largest=40):
    return StageResult(
        stage_name="Base",
        outcome=outcome,
        stopping_crowd_size=stop,
        max_crowd_tested=largest,
    )


# -- planning ---------------------------------------------------------------------


def test_plan_is_baseline_plus_one_world_per_fault():
    jobs = plan_chaos_jobs(["lab", "qtnp"], ["dropout", "crash"], seed=3)
    assert len(jobs) == 6
    assert [j.job_id for j in jobs[:3]] == [
        "chaos|lab|baseline|seed3",
        "chaos|lab|dropout|seed3",
        "chaos|lab|crash|seed3",
    ]
    assert jobs[0].world.faults is None
    assert jobs[1].world.faults is not None
    # same scenario, same seed: the fault plan is the only difference
    assert jobs[1].world.seed == jobs[0].world.seed
    assert jobs[1].world.config == jobs[0].world.config


def test_plan_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown scenario"):
        plan_chaos_jobs(["atlantis"], ["dropout"])
    with pytest.raises(ValueError, match="unknown fault preset"):
        plan_chaos_jobs(["lab"], ["gremlins"])


# -- the cap-boundary rule --------------------------------------------------------


def test_stop_at_the_cap_overlaps_a_nostop_at_the_cap():
    stopped = stage(StageOutcome.STOPPED, stop=40)
    clean = stage(StageOutcome.NO_STOP)
    assert _cap_boundary(stopped, clean)
    assert _cap_boundary(clean, stopped)  # symmetric


def test_stop_inside_the_tested_range_is_a_real_disagreement():
    stopped = stage(StageOutcome.STOPPED, stop=25)
    clean = stage(StageOutcome.NO_STOP)
    assert not _cap_boundary(stopped, clean)


def test_cap_boundary_needs_a_stop_nostop_pair():
    clean = stage(StageOutcome.NO_STOP)
    assert not _cap_boundary(clean, stage(StageOutcome.NO_STOP))
    assert not _cap_boundary(clean, stage(StageOutcome.ABORTED))
    assert not _cap_boundary(None, clean)
    assert not _cap_boundary(clean, None)


# -- the quick grid ---------------------------------------------------------------


def test_quick_grid_has_no_silently_wrong_verdicts(tmp_path):
    report = chaos_grid(quick=True, jobs=2, store=tmp_path / "chaos.cache")
    counts = report["counts"]
    assert counts["worlds"] == len(QUICK_SCENARIOS) * (len(QUICK_FAULTS) + 1)
    assert counts["compared"] > 0
    assert counts["silently_wrong"] == 0
    assert report["silently_wrong"] == []
    assert all(row["ok"] for row in report["rows"])
    text = format_report(report)
    assert "silently_wrong=0" in text
    assert "SILENTLY WRONG" not in text

    # the grid is an ordinary campaign: a re-run resumes from cache
    # with the identical verdict table
    again = chaos_grid(quick=True, jobs=2, store=tmp_path / "chaos.cache")
    assert again["rows"] == report["rows"]
