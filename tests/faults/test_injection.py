"""Fault injection end to end: every kind perturbs a world, and the
same seed with the same plan reproduces the identical run.

Behavioral observables (timeouts, missing reports, shrunken fleets)
are asserted per kind where the signature is unambiguous; every kind
must at minimum change the full-detail result fingerprint against the
fault-free run of the same seed.
"""

import dataclasses
import json

import pytest

from repro.campaign.codec import encode_result
from repro.core.config import MFCConfig
from repro.core.stages import StageKind
from repro.faults.spec import FAULT_PRESETS, FaultEvent, FaultSpec
from repro.workload.fleet import FleetSpec
from repro.worlds import SCENARIO_PRESETS, WorldSpec

SMALL_CONFIG = MFCConfig(max_crowd=15, crowd_step=5, initial_crowd=5, min_clients=10)
SMALL_FLEET = FleetSpec(n_clients=20, unresponsive_fraction=0.0)

#: one always-overlapping event per kind: windows open at (or before)
#: the measurement phase and stay open long enough that every epoch of
#: the small world runs under the fault
EVENTS = {
    "client-dropout": FaultEvent(
        kind="client-dropout", start_s=0.0, duration_s=1e6, fraction=0.4
    ),
    "blackhole": FaultEvent(
        kind="blackhole", start_s=0.0, duration_s=1e6, fraction=0.3, prob=0.5
    ),
    "stall": FaultEvent(
        kind="stall", start_s=0.0, duration_s=1e6, fraction=0.5, delay_s=0.25
    ),
    "reset": FaultEvent(
        kind="reset", start_s=0.0, duration_s=1e6, fraction=0.3, prob=0.5
    ),
    "report-loss": FaultEvent(
        kind="report-loss", start_s=0.0, duration_s=1e6, prob=0.4
    ),
    "server-crash": FaultEvent(kind="server-crash", start_s=20.0, duration_s=30.0),
    "latency-storm": FaultEvent(
        kind="latency-storm", start_s=0.0, duration_s=1e6, fraction=0.5, factor=8.0
    ),
    "bandwidth-flap": FaultEvent(
        kind="bandwidth-flap", start_s=0.0, duration_s=1e6, factor=8.0
    ),
}


def fingerprint(result) -> str:
    return json.dumps(
        encode_result(result, detail="full"), sort_keys=True, separators=(",", ":")
    )


def run_world(faults=None, seed=5, config=SMALL_CONFIG):
    spec = WorldSpec(
        scenario=SCENARIO_PRESETS["lab"](),
        fleet=SMALL_FLEET,
        config=config,
        seed=seed,
        stage_kinds=(StageKind.BASE,),
        faults=faults,
    )
    return spec.build().run()


def all_reports(result):
    for stage in result.stages.values():
        for epoch in stage.epochs:
            yield from epoch.reports


# -- determinism ------------------------------------------------------------------


def test_same_seed_same_plan_reproduces_identically():
    plan = FAULT_PRESETS["blackhole"]()
    assert fingerprint(run_world(plan)) == fingerprint(run_world(plan))


def test_different_seed_differs_under_the_same_plan():
    plan = FAULT_PRESETS["blackhole"]()
    assert fingerprint(run_world(plan, seed=5)) != fingerprint(
        run_world(plan, seed=6)
    )


def test_fault_free_run_identical_with_hardening_explicitly_off():
    """No-fault worlds take the legacy coordinator path byte for byte:
    the hardening default (None → off without faults) must not differ
    from an explicit ``hardening=False``."""
    explicit = dataclasses.replace(SMALL_CONFIG, hardening=False)
    assert fingerprint(run_world()) == fingerprint(run_world(config=explicit))


# -- every kind perturbs the world ------------------------------------------------


@pytest.mark.parametrize("kind", sorted(EVENTS))
def test_fault_changes_the_run(kind):
    clean = fingerprint(run_world())
    faulted = fingerprint(run_world(FaultSpec(events=(EVENTS[kind],))))
    assert faulted != clean, f"{kind} fault left the run byte-identical"


# -- kind-specific signatures -----------------------------------------------------


def test_dropout_shrinks_the_live_fleet():
    clean = run_world()
    faulted = run_world(FaultSpec(events=(EVENTS["client-dropout"],)))
    assert faulted.live_clients < clean.live_clients


def test_report_loss_loses_reports_but_completes():
    faulted = run_world(FaultSpec(events=(EVENTS["report-loss"],)))
    missing = sum(
        epoch.missing_reports
        for stage in faulted.stages.values()
        for epoch in stage.epochs
    )
    assert missing > 0


def test_blackhole_reports_client_timeouts():
    faulted = run_world(FaultSpec(events=(EVENTS["blackhole"],)))
    assert any(r.timed_out for r in all_reports(faulted))
