"""Fault-plan declarations: validation, presets, codec stability.

The load-bearing property here is byte-stability: the ``faults`` field
is default-omitted from the canonical world encoding, so every
fault-free spec hash, job key and cache entry minted before the fault
subsystem existed must stay byte-identical.
"""

import json

import pytest

from repro.core.config import MFCConfig
from repro.faults.spec import (
    FAULT_KINDS,
    FAULT_PRESETS,
    FaultEvent,
    FaultSpec,
    fault_spec_from_names,
)
from repro.workload.fleet import FleetSpec
from repro.worlds import SCENARIO_PRESETS, WorldSpec
from repro.worlds import codec as world_codec

SMALL_CONFIG = MFCConfig(max_crowd=15, crowd_step=5, initial_crowd=5, min_clients=10)
SMALL_FLEET = FleetSpec(n_clients=20, unresponsive_fraction=0.0)


def small_world(faults=None, seed=7):
    return WorldSpec(
        scenario=SCENARIO_PRESETS["lab"](),
        fleet=SMALL_FLEET,
        config=SMALL_CONFIG,
        seed=seed,
        faults=faults,
    )


# -- event/plan validation --------------------------------------------------------


def test_event_validation_rejects_bad_shapes():
    good = FaultEvent(kind="blackhole", start_s=1.0, duration_s=5.0)
    good.validate()
    cases = [
        dict(kind="meteor-strike", start_s=0.0, duration_s=1.0),
        dict(kind="blackhole", start_s=-1.0, duration_s=1.0),
        dict(kind="blackhole", start_s=0.0, duration_s=0.0),
        dict(kind="blackhole", start_s=0.0, duration_s=1.0, fraction=0.0),
        dict(kind="blackhole", start_s=0.0, duration_s=1.0, fraction=1.5),
        dict(kind="blackhole", start_s=0.0, duration_s=1.0, prob=0.0),
        dict(kind="stall", start_s=0.0, duration_s=1.0),  # delay_s missing
        dict(kind="latency-storm", start_s=0.0, duration_s=1.0, factor=1.0),
        dict(kind="bandwidth-flap", start_s=0.0, duration_s=1.0, factor=0.5),
        # server-wide kinds are not client-scoped
        dict(kind="server-crash", start_s=0.0, duration_s=1.0, fraction=0.5),
    ]
    for kwargs in cases:
        with pytest.raises(ValueError):
            FaultEvent(**kwargs).validate()


def test_event_window_arithmetic():
    event = FaultEvent(kind="blackhole", start_s=10.0, duration_s=5.0)
    assert event.end_s == 15.0
    assert not event.active_at(9.999)
    assert event.active_at(10.0)
    assert event.active_at(14.999)
    assert not event.active_at(15.0)


def test_empty_plan_is_invalid():
    with pytest.raises(ValueError):
        FaultSpec(events=()).validate()


def test_every_preset_validates():
    for name, factory in FAULT_PRESETS.items():
        spec = factory()
        spec.validate()
        assert all(e.kind in FAULT_KINDS for e in spec.events), name


def test_named_plans_merge_in_order():
    merged = fault_spec_from_names(["stall", "crash"])
    kinds = [e.kind for e in merged.events]
    assert kinds == ["stall", "server-crash"]


def test_unknown_preset_name_is_an_error():
    with pytest.raises(ValueError, match="unknown fault preset"):
        fault_spec_from_names(["stall", "gremlins"])


# -- codec and hash stability -----------------------------------------------------


def test_fault_free_spec_encoding_has_no_faults_key():
    doc = world_codec.encode(small_world())
    assert "faults" not in json.dumps(doc)


def test_fault_free_hash_unchanged_by_the_fault_field():
    # the spec hash a pre-faults checkout would compute: the field's
    # existence must not perturb it
    assert small_world().spec_hash == small_world(faults=None).spec_hash


def test_fault_plan_rides_the_spec_through_json():
    spec = small_world(faults=fault_spec_from_names(["stall", "report-loss"]))
    decoded = WorldSpec.from_json(spec.to_json())
    assert decoded.spec_hash == spec.spec_hash
    assert decoded.faults == spec.faults
    assert [e.kind for e in decoded.faults.events] == ["stall", "report-loss"]


def test_fault_plan_changes_the_spec_hash():
    clean = small_world()
    faulted = small_world(faults=FAULT_PRESETS["dropout"]())
    assert clean.spec_hash != faulted.spec_hash
    # and different plans hash differently
    other = small_world(faults=FAULT_PRESETS["crash"]())
    assert faulted.spec_hash != other.spec_hash


def test_invalid_plan_rejected_by_spec_validation():
    spec = small_world(
        faults=FaultSpec(
            events=(FaultEvent(kind="nonsense", start_s=0.0, duration_s=1.0),)
        )
    )
    with pytest.raises(ValueError, match="unknown fault kind"):
        spec.validate()


def test_faults_rejected_on_worlds_without_a_coordinator():
    plan = FAULT_PRESETS["crash"]()
    with pytest.raises(ValueError, match="indicator"):
        WorldSpec(
            scenario=SCENARIO_PRESETS["lab"](),
            fleet=SMALL_FLEET,
            config=SMALL_CONFIG,
            indicator=True,
            faults=plan,
        ).validate()
