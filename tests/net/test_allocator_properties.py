"""Property-style invariants of the max-min rate allocator.

Seeded random flow sets over random topologies, probed mid-flight:

- **conservation** — per link, the sum of flow rates never exceeds
  capacity, and the incrementally maintained ``current_rate()`` equals
  that sum;
- **max-min fairness** — every active flow has a *bottleneck link*: a
  saturated link on its path where no other flow gets a higher rate
  (the defining property of the max-min allocation);
- **no starvation** — every active flow gets a strictly positive rate,
  and every non-aborted transfer eventually completes;
- **abort behaviour** — aborting mid-transfer frees capacity for the
  survivors and keeps per-link byte accounting consistent.
"""

import random

import pytest

from repro.net import Network, TransferAborted
from repro.sim import Simulator

#: progressive filling freezes shares with an EPS slop per round, so
#: invariants hold to a small relative tolerance, not exactly
REL_TOL = 1e-6


def _build_random_world(seed, n_access=12, n_flows=40, with_bottleneck=True):
    """A server link + client access links + optional mid-path link,
    with *n_flows* transfers joining at random times."""
    rng = random.Random(seed)
    sim = Simulator()
    net = Network(sim)
    server = net.add_link("server", rng.uniform(2e6, 2e7))
    mid = (
        net.add_link("mid", rng.uniform(1e6, 1e7)) if with_bottleneck else None
    )
    access = [
        net.add_link(f"acc{i}", rng.uniform(1e5, 1.5e7)) for i in range(n_access)
    ]
    transfers = []

    def start(path, size):
        transfers.append(net.start_transfer(path, size))

    for _ in range(n_flows):
        acc = rng.choice(access)
        path = [server, acc]
        if mid is not None and rng.random() < 0.4:
            path.insert(1, mid)
        size = rng.uniform(1e4, 5e5)
        sim.call_in(rng.uniform(0.0, 2.0), lambda p=path, s=size: start(p, s))
    return sim, net, transfers


def _check_invariants(net, failures):
    """Record any invariant violation among the currently active flows."""
    active = [t for t in net._active]
    for link in net.links:
        flows = list(link.transfers)
        total = sum(t.rate for t in flows)
        if total > link.capacity_bps * (1.0 + REL_TOL) + 1e-6:
            failures.append(f"{link.name}: sum(rates)={total} > cap={link.capacity_bps}")
        if abs(total - link.current_rate()) > max(total, 1.0) * REL_TOL:
            failures.append(
                f"{link.name}: current_rate()={link.current_rate()} != sum={total}"
            )
    for t in active:
        if t.rate <= 0.0:
            failures.append(f"starved flow: {t!r}")
            continue
        bottlenecked = False
        for link in t.links:
            saturated = (
                sum(x.rate for x in link.transfers)
                >= link.capacity_bps * (1.0 - REL_TOL) - 1e-6
            )
            top_rate = max(x.rate for x in link.transfers)
            if saturated and t.rate >= top_rate * (1.0 - REL_TOL):
                bottlenecked = True
                break
        if not bottlenecked:
            failures.append(f"flow without a bottleneck link: {t!r}")


@pytest.mark.parametrize("seed", range(6))
def test_random_flow_sets_hold_allocator_invariants(seed):
    sim, net, transfers = _build_random_world(seed)
    failures = []
    for when in [0.5, 1.0, 1.5, 2.0, 2.5, 3.5, 5.0]:
        sim.call_in(when, lambda: _check_invariants(net, failures))
    sim.run()
    assert not failures, failures[:5]
    assert all(t.done.processed and t.done.ok for t in transfers)
    # byte conservation per link: every transfer crossing it delivered
    # its full size
    for link in net.links:
        expected = sum(t.size_bytes for t in transfers if link in t.links)
        assert link.bytes_delivered == pytest.approx(expected, rel=REL_TOL)


@pytest.mark.parametrize("seed", range(4))
def test_aborts_mid_transfer_keep_invariants(seed):
    rng = random.Random(1000 + seed)
    sim, net, transfers = _build_random_world(seed, n_flows=30)
    failures = []

    def abort_one():
        active = [t for t in net._active]
        if active:
            net.abort(rng.choice(active))

    for when in [0.8, 1.2, 1.9, 2.4, 3.0]:
        sim.call_in(when, abort_one)
        sim.call_in(when + 0.05, lambda: _check_invariants(net, failures))
    sim.run()
    assert not failures, failures[:5]
    aborted = [t for t in transfers if t.aborted]
    survivors = [t for t in transfers if not t.aborted]
    assert all(isinstance(t.done.exception, TransferAborted) for t in aborted)
    assert all(t.done.processed and t.done.ok for t in survivors)
    # per-link accounting: completed flows contributed their full size,
    # aborted flows between 0 and their full size
    for link in net.links:
        lo = sum(t.size_bytes for t in survivors if link in t.links)
        hi = lo + sum(t.size_bytes for t in aborted if link in t.links)
        assert lo * (1 - REL_TOL) - 1e-6 <= link.bytes_delivered
        assert link.bytes_delivered <= hi * (1 + REL_TOL) + 1e-6


def test_shared_bottleneck_is_split_equally():
    """Flows differing only in (ample) access links share the
    bottleneck exactly equally."""
    sim = Simulator()
    net = Network(sim)
    server = net.add_link("server", 1000.0)
    transfers = []
    for i in range(8):
        acc = net.add_link(f"acc{i}", 1e6)
        transfers.append(net.start_transfer([server, acc], 1000.0))
    for t in transfers:
        assert t.rate == pytest.approx(1000.0 / 8)
    sim.run()
    finish = transfers[0].finished_at
    assert all(t.finished_at == finish for t in transfers)


def test_no_zero_rate_starvation_under_heavy_contention():
    """Hundreds of flows on one tiny link: all progress, none starve."""
    sim = Simulator()
    net = Network(sim)
    tiny = net.add_link("tiny", 10.0)
    transfers = [net.start_transfer([tiny], 5.0) for _ in range(200)]
    assert all(t.rate > 0 for t in transfers)
    assert tiny.current_rate() == pytest.approx(10.0)
    sim.run()
    assert all(t.done.processed and t.done.ok for t in transfers)
    assert tiny.bytes_delivered == pytest.approx(5.0 * 200)


def test_duplicate_link_in_path_counts_once():
    """A link listed twice in a path is one constraint: books and
    aggregates stay exact, and the transfer completes normally."""
    sim = Simulator()
    net = Network(sim)
    link = net.add_link("l", 100.0)
    other = net.add_link("o", 1000.0)
    t = net.start_transfer([link, other, link], 200.0)
    assert t.links == [link, other]
    assert t.rate == pytest.approx(100.0)
    assert link.current_rate() == pytest.approx(100.0)
    sim.run()
    assert t.done.processed and t.done.ok
    assert t.finished_at == pytest.approx(2.0)
    assert net._active_links == []


def test_active_link_set_shrinks_back_to_empty():
    """The incrementally maintained active-link list empties out (and
    aggregates zero) once the network quiesces."""
    sim = Simulator()
    net = Network(sim)
    a = net.add_link("a", 100.0)
    b = net.add_link("b", 100.0)
    net.start_transfer([a, b], 50.0)
    assert [l.name for l in net._active_links] == ["a", "b"]
    sim.run()
    assert net._active_links == []
    assert a.current_rate() == 0.0
    assert b.current_rate() == 0.0


def test_abort_at_exact_completion_instant_is_a_noop():
    """An abort landing at the transfer's completion timestamp (the
    10 s kill timer racing the completion sweep) completes the
    transfer instead of crashing or failing it."""
    sim = Simulator()
    net = Network(sim)
    link = net.add_link("l", 100.0)
    holder = {}
    # the kill timer is armed before the transfer exists (as the MFC
    # client arms its 10 s timeout), so it fires before the completion
    # timer at the shared instant and races the completion sweep
    sim.call_at(10.0, lambda: net.abort(holder["t"]))
    holder["t"] = net.start_transfer([link], 1000.0)  # completes at t=10
    sim.run()
    t = holder["t"]
    assert t.done.processed and t.done.ok
    assert not t.aborted
    assert t.finished_at == pytest.approx(10.0)
