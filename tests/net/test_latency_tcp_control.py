"""Tests for latency models, the TCP model and the control channel."""

import random
import statistics

import pytest

from repro.net import ControlChannel, Network, StationaryJitterLatency, TcpModel
from repro.net.tcp import kbps, kib, mbps, mib, seconds_per_byte
from repro.sim import Simulator


# -- latency ------------------------------------------------------------------


def test_zero_jitter_is_deterministic():
    lat = StationaryJitterLatency(0.080, jitter=0.0)
    assert all(lat.sample_rtt() == 0.080 for _ in range(10))


def test_jitter_is_mean_preserving():
    lat = StationaryJitterLatency(0.100, jitter=0.2, rng=random.Random(1))
    samples = [lat.sample_rtt() for _ in range(20000)]
    assert statistics.mean(samples) == pytest.approx(0.100, rel=0.02)
    assert all(s > 0 for s in samples)


def test_spikes_multiply_rtt():
    lat = StationaryJitterLatency(
        0.1, jitter=0.0, spike_prob=0.5, spike_factor=4.0, rng=random.Random(2)
    )
    samples = [lat.sample_rtt() for _ in range(1000)]
    assert set(round(s, 6) for s in samples) == {0.1, 0.4}


def test_one_way_is_half_rtt():
    lat = StationaryJitterLatency(0.080, jitter=0.0)
    assert lat.sample_one_way() == pytest.approx(0.040)


def test_latency_validation():
    with pytest.raises(ValueError):
        StationaryJitterLatency(0.0)
    with pytest.raises(ValueError):
        StationaryJitterLatency(0.1, jitter=-1)
    with pytest.raises(ValueError):
        StationaryJitterLatency(0.1, spike_prob=1.5)


# -- tcp ------------------------------------------------------------------------


def test_handshake_is_one_rtt():
    assert TcpModel().handshake_delay(0.08) == pytest.approx(0.08)


def test_small_object_never_leaves_slow_start():
    tcp = TcpModel()
    plan = tcp.plan(size_bytes=5000.0, rtt=0.1, path_rate_bps=mbps(100))
    assert plan.bulk_bytes == 0.0
    assert plan.bytes_in_slow_start == 5000.0


def test_large_object_exits_slow_start():
    tcp = TcpModel()
    plan = tcp.plan(size_bytes=kib(100), rtt=0.05, path_rate_bps=mbps(10))
    assert plan.bulk_bytes > 0
    assert plan.rounds >= 1


def test_paper_100kb_bound_exits_slow_start_on_typical_path():
    """The paper's rationale for the 100 KB Large Object lower bound."""
    tcp = TcpModel()
    # typical 2007 wide-area path: 50 ms RTT, ~10 Mbps bottleneck
    threshold = tcp.minimum_large_object_bytes(rtt=0.05, path_rate_bps=mbps(10))
    assert threshold < kib(100)


def test_estimate_is_max_of_latency_and_bandwidth_bound():
    tcp = TcpModel()
    rtt = 0.1
    size = 500_000.0
    # slow path: bandwidth-bound
    assert tcp.estimate_transfer_time(size, rtt, 1e5) == pytest.approx(5.0)
    # fast path: latency-bound (the slow-start floor)
    floor = tcp.latency_floor_s(size, rtt)
    assert tcp.estimate_transfer_time(size, rtt, 1e9) == pytest.approx(floor)
    with pytest.raises(ValueError):
        tcp.estimate_transfer_time(size, rtt, 0)


def test_latency_floor_shapes():
    tcp = TcpModel()
    # sub-window object: one half-RTT
    assert tcp.latency_floor_s(1000.0, 0.1) == pytest.approx(0.05)
    # zero bytes: free
    assert tcp.latency_floor_s(0.0, 0.1) == 0.0
    # floor grows with size (more doubling rounds)
    assert tcp.latency_floor_s(1e6, 0.1) > tcp.latency_floor_s(1e5, 0.1)


def test_download_process_moves_all_bytes():
    sim = Simulator()
    net = Network(sim)
    link = net.add_link("l", 10_000.0)
    tcp = TcpModel()

    def body():
        got = yield from tcp.download(sim, net, [link], 50_000.0, rtt=0.05)
        return got

    proc = sim.process(body())
    assert sim.run_until_complete(proc) == 50_000.0
    assert link.bytes_delivered == pytest.approx(50_000.0)


def test_download_slower_under_contention():
    def timed_download(n_competitors):
        sim = Simulator()
        net = Network(sim)
        server = net.add_link("server", 100_000.0)
        tcp = TcpModel()
        for i in range(n_competitors):
            acc = net.add_link(f"bg{i}", 1e9)
            sim.process(tcp.download(sim, net, [server, acc], 500_000.0, 0.05))
        acc = net.add_link("probe", 1e9)
        probe = sim.process(tcp.download(sim, net, [server, acc], 200_000.0, 0.05))
        sim.run_until_complete(probe)
        return sim.now

    assert timed_download(8) > timed_download(0)


def test_tcp_validation():
    with pytest.raises(ValueError):
        TcpModel(mss_bytes=0)
    with pytest.raises(ValueError):
        seconds_per_byte(0)


def test_unit_helpers():
    assert mbps(8) == 1e6
    assert kbps(8) == 1e3
    assert kib(1) == 1024
    assert mib(1) == 1024 * 1024


# -- control channel ----------------------------------------------------------


def test_control_send_delivers_after_one_way_delay():
    sim = Simulator()
    chan = ControlChannel(sim)
    lat = StationaryJitterLatency(0.080, jitter=0.0)
    got = []
    chan.send(lat, lambda p: got.append((p, sim.now)), payload="go")
    sim.run()
    assert got == [("go", 0.040)]


def test_control_extra_delay():
    sim = Simulator()
    chan = ControlChannel(sim)
    lat = StationaryJitterLatency(0.080, jitter=0.0)
    got = []
    chan.send(lat, lambda p: got.append(sim.now), payload=None, extra_delay=1.0)
    sim.run()
    assert got == [pytest.approx(1.040)]


def test_control_loss_drops_without_retransmit():
    sim = Simulator()
    chan = ControlChannel(sim, rng=random.Random(3), loss_prob=0.5)
    lat = StationaryJitterLatency(0.010, jitter=0.0)
    delivered = []
    for i in range(400):
        chan.send(lat, lambda p: delivered.append(p), payload=i)
    sim.run()
    assert 120 < len(delivered) < 280  # ~50% loss
    assert chan.lost == 400 - len(delivered)
    assert chan.loss_rate == pytest.approx(chan.lost / 400)


def test_ping_round_trip():
    sim = Simulator()
    chan = ControlChannel(sim)
    lat = StationaryJitterLatency(0.120, jitter=0.0)
    rtts = []
    chan.ping(lat, rtts.append)
    sim.run()
    assert rtts == [pytest.approx(0.120)]
    assert sim.now == pytest.approx(0.120)


def test_control_loss_prob_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ControlChannel(sim, loss_prob=1.0)
