"""Tests for the max-min fair fluid network."""

import pytest

from repro.net import Link, Network, TransferAborted
from repro.sim import Simulator, SimulationError


def make_net():
    sim = Simulator()
    return sim, Network(sim)


def test_single_flow_uses_full_capacity():
    sim, net = make_net()
    link = net.add_link("l", 1000.0)  # 1000 B/s
    t = net.start_transfer([link], 5000.0)
    sim.run()
    assert t.done.processed
    assert t.finished_at == pytest.approx(5.0)


def test_two_flows_share_equally():
    sim, net = make_net()
    link = net.add_link("l", 1000.0)
    t1 = net.start_transfer([link], 1000.0)
    t2 = net.start_transfer([link], 1000.0)
    sim.run()
    # both at 500 B/s → 2 s each
    assert t1.finished_at == pytest.approx(2.0)
    assert t2.finished_at == pytest.approx(2.0)


def test_rate_rises_when_competitor_finishes():
    sim, net = make_net()
    link = net.add_link("l", 1000.0)
    small = net.start_transfer([link], 500.0)
    big = net.start_transfer([link], 1500.0)
    sim.run()
    # phase 1: both at 500 B/s until small done at t=1 (big has 1000 left)
    # phase 2: big at 1000 B/s → finishes at t=2
    assert small.finished_at == pytest.approx(1.0)
    assert big.finished_at == pytest.approx(2.0)


def test_late_arrival_slows_existing_flow():
    sim, net = make_net()
    link = net.add_link("l", 1000.0)
    first = net.start_transfer([link], 2000.0)

    second_holder = {}

    def arrive_later():
        second_holder["t"] = net.start_transfer([link], 500.0)

    sim.call_in(1.0, arrive_later)
    sim.run()
    # first: 1000 B in first second, shares 500 B/s for 1 s (500 B more),
    # then 500 B at full rate → 1.0 + 1.0 + 0.5 = 2.5 s
    assert second_holder["t"].finished_at == pytest.approx(2.0)
    assert first.finished_at == pytest.approx(2.5)


def test_bottleneck_is_minimum_along_path():
    sim, net = make_net()
    fast = net.add_link("fast", 10_000.0)
    slow = net.add_link("slow", 100.0)
    t = net.start_transfer([fast, slow], 1000.0)
    sim.run()
    assert t.finished_at == pytest.approx(10.0)


def test_max_min_respects_per_client_caps():
    """One shared link, two clients with very different access rates."""
    sim, net = make_net()
    shared = net.add_link("server", 1000.0)
    slow_client = net.add_link("dsl", 100.0)
    fast_client = net.add_link("fiber", 10_000.0)
    slow = net.start_transfer([shared, slow_client], 100.0)
    fast = net.start_transfer([shared, fast_client], 900.0)
    sim.run()
    # max-min: slow flow pinned at 100 B/s by its access link; fast flow
    # gets the remaining 900 B/s of the shared link
    assert slow.finished_at == pytest.approx(1.0)
    assert fast.finished_at == pytest.approx(1.0)


def test_bytes_conservation_across_many_flows():
    sim, net = make_net()
    link = net.add_link("l", 1234.0)
    sizes = [100.0, 450.0, 901.0, 77.0, 3000.0]
    transfers = [net.start_transfer([link], s) for s in sizes]
    sim.run()
    assert all(t.done.processed for t in transfers)
    assert link.bytes_delivered == pytest.approx(sum(sizes))


def test_zero_byte_transfer_completes_immediately():
    sim, net = make_net()
    link = net.add_link("l", 10.0)
    t = net.start_transfer([link], 0.0)
    assert t.done.triggered
    sim.run()
    assert t.finished_at == 0.0


def test_abort_frees_capacity():
    sim, net = make_net()
    link = net.add_link("l", 1000.0)
    doomed = net.start_transfer([link], 10_000.0)
    survivor = net.start_transfer([link], 1000.0)
    sim.call_in(0.5, lambda: net.abort(doomed))
    sim.run()
    # survivor: 0.5 s at 500 B/s (250 B), then full rate for 750 B → 1.25 s
    assert survivor.finished_at == pytest.approx(1.25)
    assert doomed.aborted
    assert isinstance(doomed.done.exception, TransferAborted)


def test_abort_is_idempotent():
    sim, net = make_net()
    link = net.add_link("l", 1000.0)
    t = net.start_transfer([link], 1000.0)
    net.abort(t)
    net.abort(t)  # second abort is a no-op
    sim.run()
    assert t.aborted


def test_waiting_process_sees_abort_exception():
    sim, net = make_net()
    link = net.add_link("l", 1000.0)
    outcome = []

    def downloader(sim):
        t = net.start_transfer([link], 10_000.0)
        try:
            yield t.done
            outcome.append("done")
        except TransferAborted:
            outcome.append("aborted")

    sim.process(downloader(sim))
    sim.call_in(1.0, lambda: net.abort(next(iter(net._active))))
    sim.run()
    assert outcome == ["aborted"]


def test_link_utilization_and_flow_count():
    sim, net = make_net()
    link = net.add_link("l", 1000.0)
    net.start_transfer([link], 5000.0)
    net.start_transfer([link], 5000.0)
    sim.run(until=1.0)
    assert link.active_flows == 2
    assert link.utilization() == pytest.approx(1.0)
    assert link.current_rate() == pytest.approx(1000.0)


def test_negative_size_rejected():
    sim, net = make_net()
    link = net.add_link("l", 1.0)
    with pytest.raises(SimulationError):
        net.start_transfer([link], -5.0)


def test_empty_path_rejected():
    sim, net = make_net()
    with pytest.raises(SimulationError):
        net.start_transfer([], 5.0)


def test_duplicate_link_name_rejected():
    sim, net = make_net()
    net.add_link("x", 1.0)
    with pytest.raises(SimulationError):
        net.add_link("x", 2.0)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        Link("bad", 0.0)


def test_start_transfers_batch_matches_sequential_starts():
    """A batch launch allocates once but lands the same rates,
    completion times and byte totals as per-call starts."""
    sizes = [100.0, 450.0, 901.0, 77.0, 3000.0]

    sim_a, net_a = make_net()
    link_a = net_a.add_link("l", 1234.0)
    seq = [net_a.start_transfer([link_a], s) for s in sizes]
    sim_a.run()

    sim_b, net_b = make_net()
    link_b = net_b.add_link("l", 1234.0)
    batch = net_b.start_transfers([([link_b], s) for s in sizes])
    assert net_b.allocations == 1  # one transaction for the whole crowd
    sim_b.run()

    assert [t.finished_at for t in batch] == [t.finished_at for t in seq]
    assert link_b.bytes_delivered == pytest.approx(link_a.bytes_delivered)


def test_start_transfers_handles_zero_byte_entries():
    sim, net = make_net()
    link = net.add_link("l", 1000.0)
    batch = net.start_transfers([([link], 0.0), ([link], 1000.0)])
    assert batch[0].done.triggered
    assert batch[0].finished_at == 0.0
    sim.run()
    assert batch[1].finished_at == pytest.approx(1.0)


def test_start_transfers_validates_before_starting_any():
    sim, net = make_net()
    link = net.add_link("l", 1000.0)
    with pytest.raises(SimulationError):
        net.start_transfers([([link], 10.0), ([], 5.0)])
    with pytest.raises(SimulationError):
        net.start_transfers([([link], 10.0), ([link], -1.0)])
    # the invalid batches started nothing
    assert not net._active
    sim.run()


def test_same_instant_starts_inside_run_allocate_once():
    """N joins at one simulated instant cost one allocator pass."""
    sim, net = make_net()
    server = net.add_link("server", 1000.0)
    access = [net.add_link(f"acc{i}", 10_000.0) for i in range(8)]
    transfers = []

    def crowd():
        for i in range(8):
            transfers.append(net.start_transfer([server, access[i]], 125.0))

    sim.call_at(1.0, crowd)
    sim.run()
    # one pass for the crowd's instant, one for the batched completion
    # sweep (all flows share the bottleneck equally, so they finish on
    # a single timestamp)
    assert net.allocations == 2
    finish = transfers[0].finished_at
    assert finish == pytest.approx(2.0)
    assert all(t.finished_at == finish for t in transfers)


def test_flush_not_stranded_when_awaited_process_ends_at_start_instant():
    """A transfer started at the final instant of a run_until_complete'd
    process must still get its end-of-instant allocation, and later
    synchronous mutations must flush eagerly again (the armed flush is
    not stranded by the early loop exit)."""
    sim, net = make_net()
    link = net.add_link("l", 1000.0)
    holder = {}

    def body():
        yield 1.0
        holder["t"] = net.start_transfer([link], 1000.0)
        return "done"

    assert sim.run_until_complete(sim.process(body())) == "done"
    assert holder["t"].rate == pytest.approx(1000.0)  # flush ran
    # the network is re-armable: a synchronous start allocates eagerly
    t2 = net.start_transfer([link], 1000.0)
    assert t2.rate == pytest.approx(500.0)
    assert holder["t"].rate == pytest.approx(500.0)


def test_many_flows_on_shared_plus_private_links():
    """N flows over the server link, each with a private fat access link."""
    sim, net = make_net()
    server = net.add_link("server", 1000.0)
    transfers = []
    for i in range(10):
        access = net.add_link(f"acc{i}", 10_000.0)
        transfers.append(net.start_transfer([server, access], 100.0))
    sim.run()
    # each gets 100 B/s → all finish at t=1
    for t in transfers:
        assert t.finished_at == pytest.approx(1.0)
