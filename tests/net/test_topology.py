"""Tests for topology assembly."""

import pytest

from repro.net import Topology, TopologySpec
from repro.net.topology import ClientSpec
from repro.sim import Simulator, SimulationError, RNGRegistry


def two_client_spec(**overrides):
    base = dict(
        server_access_bps=1e6,
        clients=[
            ClientSpec("c0", rtt_to_target=0.05, rtt_to_coord=0.02, access_bps=1e6),
            ClientSpec("c1", rtt_to_target=0.15, rtt_to_coord=0.08, access_bps=5e5),
        ],
    )
    base.update(overrides)
    return TopologySpec(**base)


def test_builds_links_per_client():
    sim = Simulator()
    topo = Topology(sim, two_client_spec())
    assert len(topo) == 2
    assert topo.server_access.capacity_bps == 1e6
    assert topo.client("c1").access_link.capacity_bps == 5e5


def test_download_path_order():
    sim = Simulator()
    topo = Topology(sim, two_client_spec())
    path = topo.client("c0").download_path(topo.server_access)
    assert [l.name for l in path] == ["server-access", "client-access:c0"]


def test_bottleneck_group_inserted_in_path():
    spec = TopologySpec(
        server_access_bps=1e6,
        clients=[
            ClientSpec(
                "c0", 0.05, 0.02, 1e6, bottleneck_group="transatlantic"
            ),
        ],
        shared_bottlenecks={"transatlantic": 2e5},
    )
    sim = Simulator()
    topo = Topology(sim, spec)
    path = topo.client("c0").download_path(topo.server_access)
    assert [l.name for l in path] == [
        "server-access",
        "bottleneck:transatlantic",
        "client-access:c0",
    ]
    assert topo.bottleneck("transatlantic").capacity_bps == 2e5


def test_unknown_bottleneck_group_rejected():
    spec = TopologySpec(
        server_access_bps=1e6,
        clients=[ClientSpec("c0", 0.05, 0.02, 1e6, bottleneck_group="ghost")],
    )
    with pytest.raises(ValueError, match="ghost"):
        Topology(Simulator(), spec)


def test_duplicate_client_ids_rejected():
    spec = TopologySpec(
        server_access_bps=1e6,
        clients=[
            ClientSpec("dup", 0.05, 0.02, 1e6),
            ClientSpec("dup", 0.06, 0.03, 1e6),
        ],
    )
    with pytest.raises(ValueError, match="duplicate"):
        Topology(Simulator(), spec)


def test_empty_topology_rejected():
    with pytest.raises(SimulationError):
        Topology(Simulator(), TopologySpec(server_access_bps=1e6, clients=[]))


def test_unknown_client_lookup_raises():
    topo = Topology(Simulator(), two_client_spec())
    with pytest.raises(KeyError):
        topo.client("nope")


def test_latencies_deterministic_per_seed():
    def sample(seed):
        topo = Topology(Simulator(), two_client_spec(), rngs=RNGRegistry(seed))
        return topo.client("c0").latency_to_target.sample_rtt()

    assert sample(5) == sample(5)
    assert sample(5) != sample(6)


def test_coordinator_latency_lookup():
    topo = Topology(Simulator(), two_client_spec())
    lat = topo.coordinator.latency_to("c1")
    assert lat.base_rtt == 0.08
