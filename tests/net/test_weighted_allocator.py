"""Weighted max-min shares: the cohort macro-flow contract.

A weight-``w`` flow stands in for *w* unit flows: it receives ``w``
per-unit max-min shares at every link on its path, and with every
weight at 1 the arithmetic must collapse to the historical unweighted
allocator — exact-mode worlds keep their frozen parity.
"""

import random

import pytest

from repro.net import Network
from repro.sim import Simulator
from repro.sim.kernel import SimulationError

REL_TOL = 1e-9


def test_weighted_flow_takes_weight_per_unit_shares():
    """weight 3 vs weight 1 on one saturated link split 3:1."""
    sim = Simulator()
    net = Network(sim)
    server = net.add_link("server", 1000.0)
    acc_a = net.add_link("acc_a", 1e6)
    acc_b = net.add_link("acc_b", 1e6)
    macro, unit = net.start_transfers(
        [([server, acc_a], 3000.0, 3), ([server, acc_b], 1000.0, 1)]
    )
    assert macro.rate == pytest.approx(750.0)
    assert unit.rate == pytest.approx(250.0)
    sim.run()
    # macro carries 3x the bytes at 3x the rate: both finish together
    assert macro.finished_at == pytest.approx(unit.finished_at)


def test_macro_flow_finishes_with_its_member_flows():
    """A weight-N macro of N x member bytes is time-indistinguishable
    from N symmetric unit flows on the shared bottleneck."""
    member_bytes, n = 500.0, 6

    def run_world(use_macro):
        sim = Simulator()
        net = Network(sim)
        server = net.add_link("server", 777.0)
        acc = net.add_link("acc", 1e9)
        witness_acc = net.add_link("wacc", 1e9)
        witness = net.start_transfer([server, witness_acc], 400.0)
        if use_macro:
            flows = net.start_transfers([([server, acc], member_bytes * n, n)])
        else:
            flows = net.start_transfers(
                [([server, acc], member_bytes) for _ in range(n)]
            )
        sim.run()
        return [t.finished_at for t in flows], witness.finished_at

    macro_done, macro_witness = run_world(True)
    exact_done, exact_witness = run_world(False)
    # the members are symmetric, so they all finish at one instant —
    # the same instant the macro-flow drains
    assert len(set(exact_done)) == 1
    assert macro_done[0] == pytest.approx(exact_done[0], rel=REL_TOL)
    # and the bystander sharing the bottleneck sees the same world
    assert macro_witness == pytest.approx(exact_witness, rel=REL_TOL)


@pytest.mark.parametrize("seed", range(4))
def test_weight_one_matches_unweighted_exactly(seed):
    """Explicit weight=1 triples reproduce the unweighted completion
    times bit for bit (the exact-mode parity guarantee)."""
    rng = random.Random(seed)
    shapes = [
        (rng.uniform(1e5, 1e6), rng.uniform(1e4, 2e5)) for _ in range(12)
    ]

    def run_world(explicit_weight):
        sim = Simulator()
        net = Network(sim)
        server = net.add_link("server", 5e5)
        transfers = []
        for i, (cap, size) in enumerate(shapes):
            acc = net.add_link(f"acc{i}", cap)
            if explicit_weight:
                transfers.extend(net.start_transfers([([server, acc], size, 1)]))
            else:
                transfers.append(net.start_transfer([server, acc], size))
        sim.run()
        return [t.finished_at for t in transfers]

    assert run_world(True) == run_world(False)


def test_weighted_conservation_and_fairness_mixed_weights():
    """Random mixed-weight flow set: capacity conserved per link and
    every flow bottlenecked at weight-proportional rate."""
    rng = random.Random(99)
    sim = Simulator()
    net = Network(sim)
    server = net.add_link("server", 4e5)
    triples = []
    for i in range(15):
        acc = net.add_link(f"acc{i}", rng.uniform(2e4, 3e5))
        weight = rng.choice([1, 1, 2, 5, 11])
        triples.append(([server, acc], 1e4 * weight, weight))
    transfers = net.start_transfers(triples)
    for link in net.links:
        flows = list(link.transfers)
        assert sum(t.rate for t in flows) <= link.capacity_bps * (1 + 1e-6)
    for t in transfers:
        assert t.rate > 0
        # max-min: somewhere on its path no flow gets a better
        # per-unit rate
        per_unit = t.rate / t.weight
        assert any(
            per_unit
            >= max(x.rate / x.weight for x in link.transfers) * (1 - 1e-6)
            for link in t.links
        )
    sim.run()
    assert all(t.done.processed and t.done.ok for t in transfers)


def test_batch_triples_validation():
    sim = Simulator()
    net = Network(sim)
    link = net.add_link("l", 100.0)
    with pytest.raises(SimulationError):
        net.start_transfers([([link], 10.0, 0)])
    with pytest.raises(SimulationError):
        net.start_transfer([link], 10.0, weight=-2)
    # an invalid entry anywhere aborts the whole batch before any join
    with pytest.raises(SimulationError):
        net.start_transfers([([link], 10.0, 2), ([], 5.0)])
    assert not list(link.transfers)
    # pairs and triples mix; zero-byte macro completes immediately
    a, b = net.start_transfers([([link], 0.0, 4), ([link], 10.0)])
    assert a.finished_at == sim.now
    sim.run()
    assert a.done.processed and a.done.ok
    assert b.done.processed and b.done.ok
