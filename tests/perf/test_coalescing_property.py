"""Coalescing parity: random event scripts vs the per-event seed network.

The end-of-instant allocation transaction must be *behaviour
preserving* at the network layer, not just for whole MFC worlds: this
suite generates random scripts of transfer starts (single and
same-instant batches), mid-flight aborts and natural completions over
random star-plus-bottleneck topologies, replays each script through

- the coalesced :class:`repro.net.link.Network` (one allocator pass
  per simulated instant, lazy share/ETA heaps), and
- the frozen seed implementation in ``repro/net/_seed_reference.py``
  (one full recompute per individual event),

and asserts the observable outcomes agree: identical completion
timestamps and final rates (exact float equality — the allocator
arithmetic is bit-compatible), identical abort/completion verdicts,
and per-link delivered-byte totals equal to float accumulation order
(the seed iterates hash-ordered sets where the coalesced network keeps
insertion-ordered dicts, so byte counters may differ by accumulation
rounding only — bounded here at 1e-9 relative).
"""

import random

import pytest

from repro.net import _seed_reference
from repro.net.link import Network
from repro.sim import Simulator

N_ACCESS = 10


def _make_script(seed):
    """One randomized event script, shared verbatim by both networks.

    Yields ``(time, kind, payload)`` entries; "start" payloads name
    link indices so the script is implementation-agnostic.  Batches
    model synchronized crowds: several starts on one timestamp, which
    is exactly where the coalesced path folds work the per-event seed
    performs N times.
    """
    rng = random.Random(seed)
    script = []
    for _ in range(rng.randint(8, 16)):
        when = round(rng.uniform(0.0, 3.0), 4)
        if rng.random() < 0.4:
            # a synchronized batch of 2-6 same-instant starts
            batch = []
            for _ in range(rng.randint(2, 6)):
                batch.append(_random_flow(rng))
            script.append((when, "batch", batch))
        else:
            script.append((when, "start", _random_flow(rng)))
    for _ in range(rng.randint(2, 5)):
        # abort the k-th oldest active transfer at the given time
        script.append((round(rng.uniform(0.5, 4.0), 4), "abort", rng.randint(0, 6)))
    script.sort(key=lambda entry: entry[0])
    return script


def _random_flow(rng):
    links = [0]  # server link
    if rng.random() < 0.4:
        links.append(1)  # shared mid-path bottleneck
    links.append(2 + rng.randrange(N_ACCESS))  # client access link
    return (links, round(rng.uniform(5e3, 4e5), 2))


def _replay(network_cls, seed):
    """Run the script through one implementation; return observables."""
    rng = random.Random(10_000 + seed)  # topology stream, shared
    sim = Simulator()
    net = network_cls(sim)
    links = [net.add_link("server", rng.uniform(2e6, 2e7))]
    links.append(net.add_link("mid", rng.uniform(1e6, 1e7)))
    for i in range(N_ACCESS):
        links.append(net.add_link(f"acc{i}", rng.uniform(1e5, 1.5e7)))

    transfers = []
    probes = []

    def start(flow):
        path, size = flow
        transfers.append(net.start_transfer([links[i] for i in path], size))

    def abort_kth(k):
        active = [t for t in transfers if t.active]
        if active:
            net.abort(active[k % len(active)])

    for when, kind, payload in _make_script(seed):
        if kind == "start":
            sim.call_at(when, lambda f=payload: start(f))
        elif kind == "batch":
            def launch(flows=payload):
                for flow in flows:
                    start(flow)
            sim.call_at(when, launch)
        else:
            sim.call_at(when, lambda k=payload: abort_kth(k))
    for when in (0.5, 1.0, 1.7, 2.5, 3.3, 4.1):
        sim.call_at(when, lambda: probes.append([t.rate for t in transfers]))
    sim.run()

    return {
        "finished": [t.finished_at for t in transfers],
        "aborted": [t.aborted for t in transfers],
        "ok": [t.done.processed and t.done.ok for t in transfers],
        "remaining": [t.remaining for t in transfers],
        "rates": probes,
        "bytes": {name: link.bytes_delivered for name, link in net._links.items()},
    }


@pytest.mark.parametrize("seed", range(8))
def test_random_event_scripts_match_per_event_reference(seed):
    fast = _replay(Network, seed)
    ref = _replay(_seed_reference.Network, seed)
    # completion instants and rate trajectories are bit-identical
    assert fast["finished"] == ref["finished"]
    assert fast["rates"] == ref["rates"]
    assert fast["aborted"] == ref["aborted"]
    assert fast["ok"] == ref["ok"]
    assert fast["remaining"] == ref["remaining"]
    # byte counters agree to accumulation-order rounding
    assert set(fast["bytes"]) == set(ref["bytes"])
    for name, value in fast["bytes"].items():
        assert value == pytest.approx(ref["bytes"][name], rel=1e-9, abs=1e-6)


@pytest.mark.parametrize(
    "cap_a,cap_b",
    [
        (600.0000000001, 600.0),  # sub-_EPS near-tie: hysteresis keeps A
        (600.0, 600.0000000001),  # near-tie the other way round
        (600.0, 600.0),           # exact tie: first registration wins
    ],
)
def test_sub_eps_share_ties_match_seed_hysteresis(cap_a, cap_b):
    """Shares within _EPS of each other must resolve exactly as the
    seed's in-order strict-improvement scan does (the window fallback
    replays it), not as a plain argmin — rates stay bit-identical."""

    def build(network_cls):
        sim = Simulator()
        net = network_cls(sim)
        # round 1 is won by the cheap link, pushing A/B selection into
        # the later-round (heap-assisted) path where the near-tie lives
        c = net.add_link("c", 100.0)
        a = net.add_link("a", cap_a)
        b = net.add_link("b", cap_b)
        flows = [
            net.start_transfer([c], 1000.0),
            net.start_transfer([a], 1000.0),
            net.start_transfer([b], 1000.0),
        ]
        return sim, flows

    _sim_fast, fast = build(Network)
    _sim_ref, ref = build(_seed_reference.Network)
    assert [t.rate for t in fast] == [t.rate for t in ref]
    for sim, flows in ((_sim_fast, fast), (_sim_ref, ref)):
        sim.run()
    assert [t.finished_at for t in fast] == [t.finished_at for t in ref]


def test_sub_eps_tie_with_shared_flow_matches_seed():
    """The reviewer scenario: near-tied links coupled by a shared flow,
    where picking the 'wrong' side of the tie shifts every rate."""

    def build(network_cls):
        sim = Simulator()
        net = network_cls(sim)
        c = net.add_link("c", 100.0)
        a = net.add_link("a", 600.0000000001)
        b = net.add_link("b", 600.0)
        shared = net.add_link("shared", 650.0)
        flows = [
            net.start_transfer([c], 500.0),
            net.start_transfer([a, shared], 2000.0),
            net.start_transfer([b, shared], 2000.0),
            net.start_transfer([shared], 2000.0),
        ]
        return sim, flows

    _sim_fast, fast = build(Network)
    _sim_ref, ref = build(_seed_reference.Network)
    assert [t.rate for t in fast] == [t.rate for t in ref]


def test_probe_instants_see_settled_rates():
    """A probe scheduled at the same instant as a crowd start (but
    after it in event order) observes post-flush rates only on the
    next instant — mid-instant reads see the pre-instant allocation,
    which is the documented transaction semantics."""
    sim = Simulator()
    net = Network(sim)
    server = net.add_link("server", 1000.0)
    acc = [net.add_link(f"a{i}", 1e6) for i in range(4)]
    transfers = []

    def crowd():
        for i in range(4):
            transfers.append(net.start_transfer([server, acc[i]], 1000.0))

    seen = {}
    sim.call_at(1.0, crowd)
    sim.call_at(1.0, lambda: seen.setdefault("same_instant", [t.rate for t in transfers]))
    sim.call_at(1.5, lambda: seen.setdefault("later", [t.rate for t in transfers]))
    sim.run()
    assert seen["same_instant"] == [0.0] * 4  # pre-flush: not yet allocated
    assert seen["later"] == [250.0] * 4       # post-flush fair shares
