"""Determinism parity: refactored substrate vs the frozen seed network.

The hot-path refactor (active-link-set allocator, incremental link
aggregates, cancellable completion timers, bare-Timer sleeps) must be
*behaviour-preserving*: a world built on the refactored substrate has
to produce an ``MFCResult`` byte-identical to one built on the seed
implementation (kept verbatim in ``repro/net/_seed_reference.py``).

This is not only a refactor-safety check — the campaign result caches
committed under ``benchmarks/results/cache/`` are keyed by world
parameters, not by code version, so any behaviour drift would silently
invalidate them.

The test swaps the seed ``Network`` into the topology assembly point
and compares full-detail encodings (every epoch, every client report,
every float) across a matrix of scenarios × seeds.
"""

import json

import pytest

import repro.net.topology as topology_module
from repro.campaign.codec import encode_result
from repro.core.config import MFCConfig
from repro.core.runner import MFCRunner
from repro.core.stages import StageKind
from repro.net import _seed_reference
from repro.server import presets
from repro.workload.fleet import FleetSpec


def _run_world(scenario_factory, stage_kind, seed):
    config = MFCConfig(
        threshold_s=0.100,
        max_crowd=25,
        crowd_step=5,
        initial_crowd=5,
        min_clients=20,
    )
    runner = MFCRunner.build(
        scenario_factory(),
        fleet_spec=FleetSpec(n_clients=30),
        config=config,
        stage_kinds=[stage_kind],
        seed=seed,
    )
    return runner.run()


def _canonical(result) -> str:
    return json.dumps(
        encode_result(result, detail="full"), sort_keys=True, separators=(",", ":")
    )


MATRIX = [
    pytest.param(presets.lab_validation_server, StageKind.LARGE_OBJECT, 0,
                 id="lab-large-object-seed0"),
    pytest.param(presets.lab_validation_server, StageKind.BASE, 1,
                 id="lab-base-seed1"),
    pytest.param(presets.qtnp_server, StageKind.SMALL_QUERY, 0,
                 id="qtnp-small-query-seed0"),
    pytest.param(presets.qtnp_server, StageKind.LARGE_OBJECT, 1,
                 id="qtnp-large-object-seed1"),
    pytest.param(presets.univ1_server, StageKind.LARGE_OBJECT, 2,
                 id="univ1-large-object-seed2"),
]


@pytest.mark.parametrize("scenario_factory,stage_kind,seed", MATRIX)
def test_refactored_world_matches_seed_network(
    monkeypatch, scenario_factory, stage_kind, seed
):
    fast = _canonical(_run_world(scenario_factory, stage_kind, seed))
    monkeypatch.setattr(topology_module, "Network", _seed_reference.Network)
    reference = _canonical(_run_world(scenario_factory, stage_kind, seed))
    assert fast == reference


def test_same_world_twice_is_identical():
    """Run-to-run determinism of the refactored substrate itself."""
    a = _canonical(_run_world(presets.lab_validation_server, StageKind.LARGE_OBJECT, 3))
    b = _canonical(_run_world(presets.lab_validation_server, StageKind.LARGE_OBJECT, 3))
    assert a == b
