"""Determinism parity: refactored substrate vs the frozen seed layers.

The hot-path refactors must be *behaviour-preserving*: a world built
on the refactored substrate has to produce an ``MFCResult``
byte-identical to one built on the frozen seed implementation.  Two
frozen references exist, one per refactored layer:

- ``repro/net/_seed_reference.py`` — the pre-refactor ``Network``
  (active-link-set allocator, incremental link aggregates);
- ``repro/sim/_seed_kernel.py`` — the pre-wheel simulation kernel
  (single ``(when, eid, obj)`` heap).

This is not only a refactor-safety check — the campaign result caches
committed under ``benchmarks/results/cache/`` are keyed by world
parameters, not by code version, and the world fingerprints recorded
in ``BENCH_world.json`` are the determinism baseline ``repro perf``
reports drift against — so any behaviour change would silently
invalidate both.

Each parity test swaps one frozen layer into the world assembly point
and compares full-detail encodings (every epoch, every client report,
every float) across a matrix of scenarios × seeds.  The fingerprint
tests re-run the recorded bench worlds and require byte-identical
hashes; the cheap acceptance world runs in tier-1, the crowd-scale
ones under ``REPRO_PARITY_FULL=1`` (the CI kernel-parity job).
"""

import json
import os

import pytest

import repro.net.topology as topology_module
import repro.sim.kernel as kernel_module
from repro.campaign.codec import encode_result
from repro.core.config import MFCConfig
from repro.core.runner import MFCRunner
from repro.core.stages import StageKind
from repro.net import _seed_reference
from repro.server import presets
from repro.sim import _seed_kernel
from repro.workload.fleet import FleetSpec


def _run_world(scenario_factory, stage_kind, seed):
    config = MFCConfig(
        threshold_s=0.100,
        max_crowd=25,
        crowd_step=5,
        initial_crowd=5,
        min_clients=20,
    )
    runner = MFCRunner.build(
        scenario_factory(),
        fleet_spec=FleetSpec(n_clients=30),
        config=config,
        stage_kinds=[stage_kind],
        seed=seed,
    )
    return runner.run()


def _canonical(result) -> str:
    return json.dumps(
        encode_result(result, detail="full"), sort_keys=True, separators=(",", ":")
    )


MATRIX = [
    pytest.param(presets.lab_validation_server, StageKind.LARGE_OBJECT, 0,
                 id="lab-large-object-seed0"),
    pytest.param(presets.lab_validation_server, StageKind.BASE, 1,
                 id="lab-base-seed1"),
    pytest.param(presets.qtnp_server, StageKind.SMALL_QUERY, 0,
                 id="qtnp-small-query-seed0"),
    pytest.param(presets.qtnp_server, StageKind.LARGE_OBJECT, 1,
                 id="qtnp-large-object-seed1"),
    pytest.param(presets.univ1_server, StageKind.LARGE_OBJECT, 2,
                 id="univ1-large-object-seed2"),
]


@pytest.mark.parametrize("scenario_factory,stage_kind,seed", MATRIX)
def test_refactored_world_matches_seed_network(
    monkeypatch, scenario_factory, stage_kind, seed
):
    fast = _canonical(_run_world(scenario_factory, stage_kind, seed))
    monkeypatch.setattr(topology_module, "Network", _seed_reference.Network)
    reference = _canonical(_run_world(scenario_factory, stage_kind, seed))
    assert fast == reference


def test_same_world_twice_is_identical():
    """Run-to-run determinism of the refactored substrate itself."""
    a = _canonical(_run_world(presets.lab_validation_server, StageKind.LARGE_OBJECT, 3))
    b = _canonical(_run_world(presets.lab_validation_server, StageKind.LARGE_OBJECT, 3))
    assert a == b


@pytest.mark.parametrize("scenario_factory,stage_kind,seed", MATRIX)
def test_wheel_kernel_matches_seed_kernel(
    monkeypatch, scenario_factory, stage_kind, seed
):
    """Whole worlds on the timer-wheel kernel vs the frozen seed heap.

    ``WorldSpec.build`` imports ``Simulator`` from ``repro.sim.kernel``
    at call time, so patching the module attribute swaps the kernel
    under the entire world assembly (events, processes, network,
    coordinator) without touching any other layer.
    """
    wheel = _canonical(_run_world(scenario_factory, stage_kind, seed))
    monkeypatch.setattr(kernel_module, "Simulator", _seed_kernel.Simulator)
    reference = _canonical(_run_world(scenario_factory, stage_kind, seed))
    assert wheel == reference


# -- recorded world fingerprints must stay byte-stable ------------------------

_WORLD_BENCH = os.path.join(os.path.dirname(__file__), "..", "..", "BENCH_world.json")


def _recorded_fingerprint(key: str) -> str:
    with open(_WORLD_BENCH) as fh:
        return json.load(fh)["benches"][key]["fingerprint"]


def test_acceptance_world_fingerprint_is_byte_stable():
    """The committed ``world.large_object_200`` fingerprint must
    reproduce exactly on the current kernel."""
    from repro.perf.benches import bench_world

    record = bench_world(n_clients=200, max_crowd=200, crowd_step=10, repeats=1)
    assert record["fingerprint"] == _recorded_fingerprint("world.large_object_200")


@pytest.mark.skipif(
    not os.environ.get("REPRO_PARITY_FULL"),
    reason="crowd-scale fingerprint replay only runs with REPRO_PARITY_FULL=1",
)
@pytest.mark.parametrize(
    "key,kwargs",
    [
        ("world.large_object_500", dict(n_clients=500, max_crowd=400, crowd_step=20)),
        ("world.large_object_1000", dict(n_clients=1000, max_crowd=600, crowd_step=30)),
    ],
)
def test_crowd_scale_world_fingerprints_are_byte_stable(key, kwargs):
    from repro.perf.benches import bench_world

    record = bench_world(repeats=1, **kwargs)
    assert record["fingerprint"] == _recorded_fingerprint(key)


@pytest.mark.skipif(
    not os.environ.get("REPRO_PARITY_FULL"),
    reason="crowd-scale fingerprint replay only runs with REPRO_PARITY_FULL=1",
)
def test_bisect_ramp_fingerprint_is_byte_stable():
    from repro.perf.benches import bench_bisect_ramp

    record = bench_bisect_ramp(
        n_clients=200, max_crowd=200, crowd_step=5, repeats=1
    )
    assert record["fingerprint"] == _recorded_fingerprint("world.bisect_ramp")
