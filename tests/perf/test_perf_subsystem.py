"""Unit tests for the perf benches and baseline machinery."""

import json

import pytest

from repro.perf import (
    bench_allocator,
    bench_kernel_cascade,
    bench_kernel_timers,
    compare_to_baseline,
    load_bench_file,
    write_bench_file,
)
from repro.perf.baseline import render_comparison


def test_kernel_benches_report_throughput():
    rec = bench_kernel_timers(n_events=2_000, repeats=1)
    assert rec["events"] == 2_000
    assert rec["seconds"] > 0
    assert rec["events_per_s"] == pytest.approx(2_000 / rec["seconds"])
    cascade = bench_kernel_cascade(n_events=2_000, repeats=1)
    assert cascade["seconds"] > 0


def test_allocator_bench_counts_recomputes():
    rec = bench_allocator(n_flows=5, n_idle_links=20, n_rounds=2, repeats=1)
    assert rec["recomputes"] == 2 * (5 + 1)  # joins + one batched sweep
    assert rec["us_per_recompute"] > 0


def test_bench_file_roundtrip(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    payload = {"k": {"seconds": 1.5, "params": {"n": 3}}}
    write_bench_file(path, payload)
    assert load_bench_file(path) == payload
    assert load_bench_file(str(tmp_path / "missing.json")) is None


def test_bench_file_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "benches": {}}))
    with pytest.raises(ValueError, match="schema"):
        load_bench_file(str(path))


def test_compare_matches_only_identical_params():
    current = {
        "a": {"seconds": 1.0, "params": {"n": 10}},
        "b": {"seconds": 2.0, "params": {"n": 10}},
    }
    baseline = {
        "a": {"seconds": 3.0, "params": {"n": 10}},
        "b": {"seconds": 9.0, "params": {"n": 20}},  # incomparable
    }
    rows = {r["key"]: r for r in compare_to_baseline(current, baseline)}
    assert rows["a"]["speedup"] == pytest.approx(3.0)
    assert rows["b"]["speedup"] is None
    assert rows["b"]["baseline_seconds"] is None


def test_compare_flags_fingerprint_drift():
    current = {
        "w": {"seconds": 1.0, "params": {}, "fingerprint": "sha256:aa"},
    }
    same = {"w": {"seconds": 2.0, "params": {}, "fingerprint": "sha256:aa"}}
    drift = {"w": {"seconds": 2.0, "params": {}, "fingerprint": "sha256:bb"}}
    assert compare_to_baseline(current, same)[0]["fingerprint_match"] is True
    assert compare_to_baseline(current, drift)[0]["fingerprint_match"] is False
    assert compare_to_baseline(current, None)[0]["fingerprint_match"] is None


def test_render_comparison_marks_drift():
    rows = compare_to_baseline(
        {"w": {"seconds": 1.0, "params": {}, "fingerprint": "sha256:aa"}},
        {"w": {"seconds": 2.0, "params": {}, "fingerprint": "sha256:bb"}},
    )
    table = render_comparison(rows)
    assert "DRIFT" in table
    assert "2.00x" in table


def test_committed_baseline_loads_and_has_acceptance_entry():
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    baseline = load_bench_file(
        os.path.join(repo_root, "benchmarks", "results", "BENCH_baseline.json")
    )
    assert baseline is not None
    world = baseline["world.large_object_200"]
    assert world["params"]["n_clients"] == 200
    assert world["fingerprint"].startswith("sha256:")
