"""Unit tests for the perf benches, baseline machinery and perf gate."""

import json

import pytest

from repro.perf import (
    bench_allocator,
    bench_allocator_sync_crowd,
    bench_kernel_cascade,
    bench_kernel_timers,
    compare_to_baseline,
    find_regressions,
    load_bench_file,
    write_bench_file,
)
from repro.perf.baseline import render_comparison


def test_kernel_benches_report_throughput():
    rec = bench_kernel_timers(n_events=2_000, repeats=1)
    assert rec["events"] == 2_000
    assert rec["seconds"] > 0
    assert rec["events_per_s"] == pytest.approx(2_000 / rec["seconds"])
    cascade = bench_kernel_cascade(n_events=2_000, repeats=1)
    assert cascade["seconds"] > 0


def test_allocator_bench_counts_recomputes():
    rec = bench_allocator(n_flows=5, n_idle_links=20, n_rounds=2, repeats=1)
    # measured from Network.allocations: joins (eager, outside the
    # event loop) + one batched completion sweep per round
    assert rec["recomputes"] == 2 * (5 + 1)
    assert rec["us_per_recompute"] > 0


def test_sync_crowd_bench_coalesces_at_least_5x():
    """The acceptance criterion: a synchronized crowd folds ≥5x more
    per-event recomputes into its end-of-instant passes."""
    rec = bench_allocator_sync_crowd(n_clients=50, n_rounds=3, repeats=1)
    # two allocator passes per round: the crowd's join instant and the
    # batched completion sweep
    assert rec["recomputes"] == 2 * 3
    assert rec["per_event_recomputes"] == 3 * (50 + 1)
    assert rec["coalescing_factor"] >= 5.0


def test_campaign_bench_reports_all_three_arms():
    from repro.perf import bench_campaign

    rec = bench_campaign(n_worlds=24, jobs=2, per_job_worlds=12, repeats=1)
    assert rec["worlds"] == 24
    assert rec["per_job_worlds"] == 12
    assert rec["worlds_per_s"] == pytest.approx(24 / rec["seconds"])
    assert rec["seq_seconds"] > 0
    assert rec["dispatch_speedup"] > 0
    assert rec["overhead_speedup"] >= 0
    assert rec["overhead_us_batched"] > 0  # clamped at 1us/world
    assert rec["fingerprint"].startswith("sha256:")
    assert rec["params"]["n_worlds"] == 24


def test_campaign_bench_fingerprint_is_deterministic():
    from repro.perf import bench_campaign

    first = bench_campaign(n_worlds=10, jobs=2, per_job_worlds=2, repeats=1)
    second = bench_campaign(n_worlds=10, jobs=2, per_job_worlds=2, repeats=1)
    assert first["fingerprint"] == second["fingerprint"]


def test_find_regressions_flags_only_threshold_breaches():
    rows = compare_to_baseline(
        {
            "slow": {"seconds": 2.0, "params": {}},
            "ok": {"seconds": 1.1, "params": {}},
            "fresh": {"seconds": 9.9, "params": {}},  # no baseline entry
        },
        {
            "slow": {"seconds": 1.0, "params": {}},
            "ok": {"seconds": 1.0, "params": {}},
        },
    )
    regs = find_regressions(rows, max_regression=0.25)
    assert [r["key"] for r in regs] == ["slow"]
    assert regs[0]["slowdown"] == pytest.approx(2.0)
    # a generous threshold clears everything
    assert find_regressions(rows, max_regression=2.0) == []
    with pytest.raises(ValueError):
        find_regressions(rows, max_regression=-0.1)


def test_bench_file_roundtrip(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    payload = {"k": {"seconds": 1.5, "params": {"n": 3}}}
    write_bench_file(path, payload)
    assert load_bench_file(path) == payload
    assert load_bench_file(str(tmp_path / "missing.json")) is None


def test_bench_file_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "benches": {}}))
    with pytest.raises(ValueError, match="schema"):
        load_bench_file(str(path))


def test_compare_matches_only_identical_params():
    current = {
        "a": {"seconds": 1.0, "params": {"n": 10}},
        "b": {"seconds": 2.0, "params": {"n": 10}},
    }
    baseline = {
        "a": {"seconds": 3.0, "params": {"n": 10}},
        "b": {"seconds": 9.0, "params": {"n": 20}},  # incomparable
    }
    rows = {r["key"]: r for r in compare_to_baseline(current, baseline)}
    assert rows["a"]["speedup"] == pytest.approx(3.0)
    assert rows["b"]["speedup"] is None
    assert rows["b"]["baseline_seconds"] is None


def test_compare_flags_fingerprint_drift():
    current = {
        "w": {"seconds": 1.0, "params": {}, "fingerprint": "sha256:aa"},
    }
    same = {"w": {"seconds": 2.0, "params": {}, "fingerprint": "sha256:aa"}}
    drift = {"w": {"seconds": 2.0, "params": {}, "fingerprint": "sha256:bb"}}
    assert compare_to_baseline(current, same)[0]["fingerprint_match"] is True
    assert compare_to_baseline(current, drift)[0]["fingerprint_match"] is False
    assert compare_to_baseline(current, None)[0]["fingerprint_match"] is None


def test_render_comparison_marks_drift():
    rows = compare_to_baseline(
        {"w": {"seconds": 1.0, "params": {}, "fingerprint": "sha256:aa"}},
        {"w": {"seconds": 2.0, "params": {}, "fingerprint": "sha256:bb"}},
    )
    table = render_comparison(rows)
    assert "DRIFT" in table
    assert "2.00x" in table


def _canned_suites(monkeypatch, kernel_seconds=1.0, world_seconds=1.0):
    """Patch the bench suites so CLI gate tests run in microseconds."""
    import repro.perf as perf_pkg

    kernel = {
        "kernel.timers.quick": {"seconds": kernel_seconds, "params": {"n": 1}},
        "allocator.flows_10.quick": {"seconds": kernel_seconds, "params": {"n": 2}},
    }
    world = {
        "world.tiny": {
            "seconds": world_seconds,
            "params": {"n": 3},
            "fingerprint": "sha256:feed",
        },
    }
    monkeypatch.setattr(perf_pkg, "run_kernel_suite", lambda quick=False: kernel)
    monkeypatch.setattr(perf_pkg, "run_world_suite", lambda quick=False: world)
    return {**kernel, **world}


def _write_baseline(path, benches, scale=1.0):
    doctored = {
        key: {**rec, "seconds": rec["seconds"] * scale}
        for key, rec in benches.items()
    }
    write_bench_file(str(path), doctored)


def test_perf_check_exits_nonzero_on_doctored_regressed_baseline(
    monkeypatch, tmp_path, capsys
):
    """The acceptance criterion: feeding --check a baseline that makes
    the current numbers look >25% slower must exit nonzero."""
    from repro.cli import main

    benches = _canned_suites(monkeypatch)
    baseline = tmp_path / "BENCH_baseline.json"
    # doctor the baseline to half the current wall time → 2x "regression"
    _write_baseline(baseline, benches, scale=0.5)
    code = main(
        [
            "perf", "--quick", "--check", "--no-root-mirror",
            "--out", str(tmp_path / "results"),
            "--baseline", str(baseline),
        ]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "perf regression" in err


def test_perf_check_passes_against_honest_baseline(monkeypatch, tmp_path):
    from repro.cli import main

    benches = _canned_suites(monkeypatch)
    baseline = tmp_path / "BENCH_baseline.json"
    _write_baseline(baseline, benches, scale=1.0)
    code = main(
        [
            "perf", "--quick", "--check", "--no-root-mirror",
            "--out", str(tmp_path / "results"),
            "--baseline", str(baseline),
        ]
    )
    assert code == 0


def test_perf_check_respects_max_regression_flag(monkeypatch, tmp_path):
    from repro.cli import main

    benches = _canned_suites(monkeypatch)
    baseline = tmp_path / "BENCH_baseline.json"
    _write_baseline(baseline, benches, scale=0.5)  # current looks 2x slower
    code = main(
        [
            "perf", "--quick", "--check", "--no-root-mirror",
            "--max-regression", "1.5",  # allow up to 2.5x
            "--out", str(tmp_path / "results"),
            "--baseline", str(baseline),
        ]
    )
    assert code == 0


def test_perf_check_keys_scopes_the_timing_gate(monkeypatch, tmp_path):
    """--check-keys gates only matching benches: a world-bench
    'regression' (cross-machine wall-clock noise) passes a gate scoped
    to kernel./allocator., and fails an unscoped one."""
    from repro.cli import main

    benches = _canned_suites(monkeypatch)
    baseline = tmp_path / "BENCH_baseline.json"
    # doctor only the world bench into a regression
    doctored = {
        key: {**rec, "seconds": rec["seconds"] * (0.1 if key.startswith("world.") else 1.0)}
        for key, rec in benches.items()
    }
    write_bench_file(str(baseline), doctored)
    scoped = [
        "perf", "--quick", "--check", "--no-root-mirror",
        "--check-keys", "kernel.", "--check-keys", "allocator.",
        "--out", str(tmp_path / "results"),
        "--baseline", str(baseline),
    ]
    assert main(scoped) == 0
    unscoped = [a for a in scoped if a not in ("--check-keys", "kernel.", "allocator.")]
    assert main(unscoped) == 1


def test_perf_check_fails_without_baseline(monkeypatch, tmp_path):
    from repro.cli import main

    _canned_suites(monkeypatch)
    code = main(
        [
            "perf", "--quick", "--check", "--no-root-mirror",
            "--out", str(tmp_path / "results"),
            "--baseline", str(tmp_path / "missing.json"),
        ]
    )
    assert code == 1


def test_perf_mirrors_bench_files_to_project_root(monkeypatch, tmp_path):
    """The cross-PR trajectory record: root-level BENCH_* copies land
    in the project root resolved from --out, regardless of the cwd."""
    import os

    from repro.cli import main

    _canned_suites(monkeypatch)
    repo = tmp_path / "repo"
    (repo / "benchmarks").mkdir(parents=True)
    (repo / "pyproject.toml").write_text("")  # the root marker
    elsewhere = tmp_path / "elsewhere"
    elsewhere.mkdir()
    monkeypatch.chdir(elsewhere)  # cwd must NOT receive the mirrors
    out = repo / "benchmarks" / "results"
    code = main(["perf", "--out", str(out)])
    assert code == 0
    assert load_bench_file(str(out / "BENCH_kernel.json"))
    # the mirrored root copies exist and match the --out payloads
    assert load_bench_file(str(repo / "BENCH_kernel.json")) == load_bench_file(
        str(out / "BENCH_kernel.json")
    )
    assert load_bench_file(str(repo / "BENCH_world.json")) == load_bench_file(
        str(out / "BENCH_world.json")
    )
    assert not os.path.exists(elsewhere / "BENCH_kernel.json")
    assert not os.path.exists(repo / "BENCH_baseline.json")


def test_perf_mirror_skipped_outside_any_project(monkeypatch, tmp_path):
    """No project root above --out → no stray mirror files."""
    import os

    from repro.cli import main

    _canned_suites(monkeypatch)
    monkeypatch.chdir(tmp_path)
    code = main(["perf", "--out", str(tmp_path / "results")])
    assert code == 0
    assert not os.path.exists(tmp_path / "BENCH_kernel.json")


def test_perf_quick_never_overwrites_root_mirror(monkeypatch, tmp_path):
    """--quick smoke payloads must not replace the committed
    full-suite trajectory record at the project root."""
    from repro.cli import main

    _canned_suites(monkeypatch)
    repo = tmp_path / "repo"
    (repo / "benchmarks").mkdir(parents=True)
    (repo / "pyproject.toml").write_text("")
    committed = {"k": {"seconds": 1.0, "params": {"full": True}}}
    write_bench_file(str(repo / "BENCH_kernel.json"), committed)
    code = main(["perf", "--quick", "--out", str(repo / "benchmarks" / "results")])
    assert code == 0
    # the root record is untouched by the quick run
    assert load_bench_file(str(repo / "BENCH_kernel.json")) == committed


def test_perf_check_fails_when_nothing_was_comparable(monkeypatch, tmp_path):
    """A gate that compared zero benches (typo'd prefix, renamed
    benches) must fail loudly, not pass vacuously."""
    from repro.cli import main

    benches = _canned_suites(monkeypatch)
    baseline = tmp_path / "BENCH_baseline.json"
    _write_baseline(baseline, benches, scale=0.01)  # wildly regressed
    code = main(
        [
            "perf", "--quick", "--check", "--no-root-mirror",
            "--check-keys", "kernal.",  # typo: matches nothing
            "--out", str(tmp_path / "results"),
            "--baseline", str(baseline),
        ]
    )
    assert code == 1


def test_committed_baseline_loads_and_has_acceptance_entry():
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    baseline = load_bench_file(
        os.path.join(repo_root, "benchmarks", "results", "BENCH_baseline.json")
    )
    assert baseline is not None
    world = baseline["world.large_object_200"]
    assert world["params"]["n_clients"] == 200
    assert world["fingerprint"].startswith("sha256:")
