"""Shared world-building helpers for server tests."""

from typing import Optional

import pytest

from repro.content.site import SiteContent, minimal_site
from repro.net.topology import ClientSpec, Topology, TopologySpec
from repro.server.http import HTTPRequest, Method
from repro.server.resources import ServerSpec
from repro.server.webserver import SimWebServer
from repro.sim import Simulator


def build_world(
    spec: Optional[ServerSpec] = None,
    site: Optional[SiteContent] = None,
    server_access_bps: float = 1e9,
    n_clients: int = 4,
    rtt: float = 0.05,
    client_bps: float = 1e9,
):
    """A simulator, topology and server wired together, jitter-free."""
    sim = Simulator()
    topo = Topology(
        sim,
        TopologySpec(
            server_access_bps=server_access_bps,
            clients=[
                ClientSpec(
                    f"c{i}",
                    rtt_to_target=rtt,
                    rtt_to_coord=0.02,
                    access_bps=client_bps,
                    jitter=0.0,
                )
                for i in range(n_clients)
            ],
        ),
    )
    server = SimWebServer(
        sim,
        spec if spec is not None else ServerSpec(),
        site if site is not None else minimal_site(),
        topo.network,
        topo.server_access,
    )
    return sim, topo, server


def fetch(sim, server, client, path, method=Method.GET, rtt=0.05):
    """Run one request to completion; returns the HTTPResponse."""
    request = HTTPRequest(method=method, path=path, client_id=client.client_id)
    proc = server.submit(request, client, rtt)
    return sim.run_until_complete(proc)


@pytest.fixture
def world():
    return build_world()
