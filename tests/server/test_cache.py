"""Tests for the byte-budgeted LRU cache."""

import pytest

from repro.server import LRUCache


def test_miss_then_hit():
    cache = LRUCache(1000)
    assert not cache.lookup("a")
    cache.insert("a", 100)
    assert cache.lookup("a")
    assert cache.stats() == (1, 1, 0)
    assert cache.hit_rate() == 0.5


def test_eviction_is_lru():
    cache = LRUCache(300)
    cache.insert("a", 100)
    cache.insert("b", 100)
    cache.insert("c", 100)
    cache.lookup("a")          # refresh a; b is now LRU
    cache.insert("d", 100)     # evicts b
    assert "a" in cache and "c" in cache and "d" in cache
    assert "b" not in cache
    assert cache.evictions == 1


def test_oversize_entry_not_cached():
    cache = LRUCache(100)
    assert not cache.insert("huge", 500)
    assert len(cache) == 0


def test_zero_capacity_disables():
    cache = LRUCache(0)
    assert not cache.enabled
    assert not cache.insert("a", 1)
    assert not cache.lookup("a")
    assert cache.misses == 1


def test_reinsert_updates_size():
    cache = LRUCache(1000)
    cache.insert("a", 100)
    cache.insert("a", 300)
    assert cache.used_bytes == 300
    assert len(cache) == 1


def test_invalidate_and_clear():
    cache = LRUCache(1000)
    cache.insert("a", 100)
    cache.insert("b", 100)
    assert cache.invalidate("a")
    assert not cache.invalidate("a")
    assert cache.used_bytes == 100
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes == 0


def test_used_never_exceeds_capacity():
    cache = LRUCache(250)
    for i in range(50):
        cache.insert(f"k{i}", 90)
        assert cache.used_bytes <= 250


def test_validation():
    with pytest.raises(ValueError):
        LRUCache(-1)
    cache = LRUCache(10)
    with pytest.raises(ValueError):
        cache.insert("a", -5)
