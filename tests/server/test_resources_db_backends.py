"""Tests for ServerResources, Database and the dynamic backends."""

import pytest

from repro.content.objects import ContentType, WebObject
from repro.server.backends import BackendSpec, make_backend
from repro.server.database import Database, DatabaseSpec
from repro.server.resources import MIB, ServerResources, ServerSpec
from repro.sim import Simulator


def make_resources(**overrides):
    sim = Simulator()
    defaults = dict(
        name="t",
        ram_bytes=1000 * MIB,
        baseline_memory_bytes=200 * MIB,
        swap_bytes=2000 * MIB,
        swap_slowdown=10.0,
    )
    defaults.update(overrides)
    spec = ServerSpec(**defaults)
    return sim, ServerResources(sim, spec)


def query_obj(rows=10_000, size=500.0, path="/q?x=1", cacheable=True):
    return WebObject(
        path, ContentType.QUERY, size, dynamic=True, db_rows=rows, cacheable=cacheable
    )


# -- ServerSpec / ServerResources ------------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError):
        ServerSpec(cpu_cores=0).validate()
    with pytest.raises(ValueError):
        ServerSpec(cpu_speed=0).validate()
    with pytest.raises(ValueError):
        ServerSpec(max_workers=0).validate()
    with pytest.raises(ValueError):
        ServerSpec(accept_thrash_threshold=0).validate()
    with pytest.raises(ValueError):
        ServerSpec(
            baseline_memory_bytes=10e12, ram_bytes=1e9, swap_bytes=1e9
        ).validate()


def test_swap_factor_below_ram_is_one():
    _, res = make_resources()
    assert res.swap_factor() == 1.0


def test_swap_factor_grows_linearly_above_ram():
    _, res = make_resources()
    res.allocate_memory(900 * MIB)  # level 1100, over by 100/1000
    assert res.swap_factor() == pytest.approx(1.0 + 10.0 * 0.1)


def test_allocate_fails_when_swap_exhausted():
    _, res = make_resources()
    assert res.allocate_memory(2700 * MIB)
    assert not res.allocate_memory(200 * MIB)


def test_free_unallocated_raises():
    _, res = make_resources()
    with pytest.raises(RuntimeError):
        res.free_memory(500 * MIB)


def test_consume_cpu_scales_with_speed():
    sim, res = make_resources(cpu_speed=2.0)

    def body():
        yield from res.consume_cpu(1.0)

    sim.run_until_complete(sim.process(body()))
    assert sim.now == pytest.approx(0.5)


def test_consume_cpu_slows_when_swapping():
    sim, res = make_resources()
    res.allocate_memory(1800 * MIB)  # level=2000, over by 1.0 → factor 11

    def body():
        yield from res.consume_cpu(0.1)

    sim.run_until_complete(sim.process(body()))
    assert sim.now == pytest.approx(1.1)


def test_cpu_cores_parallelize():
    sim, res = make_resources(cpu_cores=2)
    done = []

    def body(tag):
        yield from res.consume_cpu(1.0)
        done.append((tag, sim.now))

    for t in range(2):
        sim.process(body(t))
    sim.run()
    assert [d[1] for d in done] == [1.0, 1.0]


def test_disk_serializes_and_charges_seek():
    sim, res = make_resources(disk_bandwidth_bps=1000.0, disk_seek_s=0.5)
    done = []

    def body(tag):
        yield from res.read_disk(1000.0)
        done.append(sim.now)

    sim.process(body(0))
    sim.process(body(1))
    sim.run()
    assert done == [pytest.approx(1.5), pytest.approx(3.0)]


# -- Database --------------------------------------------------------------------


def test_db_query_cost_is_rows_over_rate():
    sim = Simulator()
    db = Database(sim, DatabaseSpec(row_scan_rate=10_000.0, per_query_overhead_s=0.0,
                                    query_cache_bytes=0.0))

    def body():
        yield from db.execute(query_obj(rows=5_000))

    sim.run_until_complete(sim.process(body()))
    assert sim.now == pytest.approx(0.5)


def test_db_query_cache_hit_is_cheap():
    sim = Simulator()
    db = Database(sim, DatabaseSpec(row_scan_rate=10_000.0, per_query_overhead_s=0.01))
    times = []

    def body():
        yield from db.execute(query_obj(rows=5_000))
        times.append(sim.now)
        yield from db.execute(query_obj(rows=5_000))
        times.append(sim.now)

    sim.run_until_complete(sim.process(body()))
    first = times[0]
    second = times[1] - times[0]
    assert second < first / 100


def test_db_uncacheable_query_never_cached():
    sim = Simulator()
    db = Database(sim, DatabaseSpec(row_scan_rate=10_000.0))
    obj = query_obj(cacheable=False)

    def body():
        yield from db.execute(obj)
        yield from db.execute(obj)

    sim.run_until_complete(sim.process(body()))
    assert db.query_cache.hits == 0


def test_db_connection_pool_limits_parallelism():
    sim = Simulator()
    db = Database(
        sim,
        DatabaseSpec(
            max_connections=1,
            row_scan_rate=10_000.0,
            per_query_overhead_s=0.0,
            query_cache_bytes=0.0,
        ),
    )
    done = []

    def body(i):
        yield from db.execute(query_obj(rows=10_000, path=f"/q?x={i}"))
        done.append(sim.now)

    sim.process(body(0))
    sim.process(body(1))
    sim.run()
    assert done == [pytest.approx(1.0), pytest.approx(2.0)]


def test_db_contention_point_serializes_after_scan():
    sim = Simulator()
    db = Database(
        sim,
        DatabaseSpec(
            max_connections=10,
            row_scan_rate=1e9,
            per_query_overhead_s=0.0,
            contention_point_s=1.0,
            query_cache_bytes=0.0,
        ),
    )
    done = []

    def body(i):
        yield from db.execute(query_obj(path=f"/q?x={i}"))
        done.append(sim.now)

    for i in range(3):
        sim.process(body(i))
    sim.run()
    assert done == [
        pytest.approx(1.0, abs=1e-3),
        pytest.approx(2.0, abs=1e-3),
        pytest.approx(3.0, abs=1e-3),
    ]


def test_db_rejects_static_object():
    sim = Simulator()
    db = Database(sim, DatabaseSpec())
    static = WebObject("/a.html", ContentType.TEXT, 10)

    def body():
        yield from db.execute(static)

    with pytest.raises(ValueError):
        sim.run_until_complete(sim.process(body()))


def test_db_spec_validation():
    for bad in (
        dict(max_connections=0),
        dict(row_scan_rate=0),
        dict(per_query_overhead_s=-1),
        dict(query_cache_bytes=-1),
        dict(contention_point_s=-1),
    ):
        with pytest.raises(ValueError):
            DatabaseSpec(**bad).validate()


# -- backends ---------------------------------------------------------------------


def run_concurrent_queries(backend_kind, n, rows=10_000, process_mb=24.0):
    sim, res = make_resources()
    db = Database(
        sim,
        DatabaseSpec(row_scan_rate=1_000_000.0, query_cache_bytes=0.0),
    )
    spec = BackendSpec(kind=backend_kind, fastcgi_process_bytes=process_mb * MIB)
    backend = make_backend(sim, spec, res, db)
    peak_memory = [res.memory.level]

    def body(i):
        yield from backend.handle(query_obj(rows=rows, path=f"/q?u={i}"))
        peak_memory.append(res.memory.level)

    procs = [sim.process(body(i)) for i in range(n)]
    sim.run()
    assert all(p.processed for p in procs)
    return sim, res, backend


def test_fastcgi_tracks_process_count():
    _, _, backend = run_concurrent_queries("fastcgi", 10)
    assert backend.peak_processes == 10
    assert backend.active_processes == 0


def test_fastcgi_memory_returns_to_baseline():
    _, res, _ = run_concurrent_queries("fastcgi", 10)
    assert res.memory.level == pytest.approx(200 * MIB)


def test_fastcgi_swaps_under_many_forks():
    # 50 forks x 24 MB = 1.2 GB on a 1 GB box → swap engaged
    _, res, backend = run_concurrent_queries("fastcgi", 50)
    assert res.memory.peak_level > res.spec.ram_bytes


def test_fastcgi_slower_than_mongrel_at_high_concurrency():
    sim_f, _, _ = run_concurrent_queries("fastcgi", 60)
    sim_m, _, _ = run_concurrent_queries("mongrel", 60)
    assert sim_f.now > sim_m.now * 1.5


def test_mongrel_memory_stays_flat():
    _, res, _ = run_concurrent_queries("mongrel", 60)
    assert res.memory.peak_level == pytest.approx(200 * MIB)


def test_fork_failure_on_memory_exhaustion():
    # enormous per-process image exhausts RAM+swap quickly
    _, _, backend = run_concurrent_queries("fastcgi", 40, process_mb=200.0)
    assert backend.forks_failed > 0


def test_backend_spec_validation():
    with pytest.raises(ValueError):
        make_backend(Simulator(), BackendSpec(kind="cgi"), None, None)
    with pytest.raises(ValueError):
        BackendSpec(mongrel_pool_size=0).validate()
    with pytest.raises(ValueError):
        BackendSpec(fastcgi_process_bytes=0).validate()
