"""Tests for SyntheticServer, LoadBalancedCluster, ResourceMonitor,
AccessLog analyses and the scenario presets."""

import pytest

from repro.content.site import minimal_site
from repro.net.topology import ClientSpec, Topology, TopologySpec
from repro.server import (
    AccessLog,
    LoadBalancedCluster,
    ResourceMonitor,
    SimWebServer,
    SyntheticServer,
)
from repro.server.http import HTTPRequest, Method, Status
from repro.server.presets import (
    all_cooperating_scenarios,
    lab_validation_server,
    qtnp_server,
    qtp_cluster,
    univ2_server,
    univ3_server,
)
from repro.server.resources import ServerSpec
from repro.server.synthetic import exponential_model, linear_model, step_model
from repro.sim import Simulator

from tests.server.conftest import build_world


# -- synthetic models --------------------------------------------------------------


def test_linear_model_zero_for_single_request():
    model = linear_model(0.01)
    assert model(1) == 0.0
    assert model(11) == pytest.approx(0.1)


def test_exponential_model_monotone():
    model = exponential_model(0.001, 0.1)
    values = [model(n) for n in range(1, 60)]
    assert values[0] == 0.0
    assert all(b >= a for a, b in zip(values, values[1:]))


def test_step_model_cliff():
    model = step_model(threshold=10, low_s=0.0, high_s=1.0)
    assert model(9) == 0.0 and model(10) == 1.0


def test_model_validation():
    with pytest.raises(ValueError):
        linear_model(-1)
    with pytest.raises(ValueError):
        exponential_model(-1, 0.1)
    with pytest.raises(ValueError):
        step_model(0, 0, 1)


def make_synth(model, n_clients=10):
    sim = Simulator()
    topo = Topology(
        sim,
        TopologySpec(
            server_access_bps=1e9,
            clients=[
                ClientSpec(f"c{i}", 0.05, 0.02, 1e9, jitter=0.0)
                for i in range(n_clients)
            ],
        ),
    )
    server = SyntheticServer(sim, model, topo.network, topo.server_access)
    return sim, topo, server


def test_synthetic_server_applies_model_per_pending():
    sim, topo, server = make_synth(linear_model(0.1))
    durations = {}

    def issue(client):
        req = HTTPRequest(Method.GET, "/any", client.client_id)
        resp = yield server.submit(req, client, 0.05)
        durations[client.client_id] = resp.server_side_duration

    for c in topo.clients[:5]:
        sim.process(issue(c))
    sim.run()
    # 5 simultaneous arrivals: the last to enter sees pending=5
    assert max(durations.values()) >= 0.1 * 4
    assert server.pending_requests == 0
    assert len(server.access_log) == 5


def test_synthetic_server_single_request_fast():
    sim, topo, server = make_synth(exponential_model(0.005, 0.2))
    done = []

    def issue(client):
        req = HTTPRequest(Method.GET, "/any", client.client_id)
        resp = yield server.submit(req, client, 0.05)
        done.append(resp.server_side_duration)

    sim.process(issue(topo.clients[0]))
    sim.run()
    assert done[0] < 0.05


# -- cluster --------------------------------------------------------------------


def make_cluster(n_servers=4, policy="least_connections", n_clients=8):
    sim = Simulator()
    topo = Topology(
        sim,
        TopologySpec(
            server_access_bps=1e9,
            clients=[
                ClientSpec(f"c{i}", 0.05, 0.02, 1e9, jitter=0.0)
                for i in range(n_clients)
            ],
        ),
    )
    servers = [
        SimWebServer(
            sim,
            ServerSpec(name=f"s{i}", head_cpu_s=0.05),
            minimal_site(),
            topo.network,
            topo.server_access,
        )
        for i in range(n_servers)
    ]
    return sim, topo, LoadBalancedCluster(sim, servers, policy=policy)


def test_cluster_spreads_load_least_connections():
    sim, topo, cluster = make_cluster(n_servers=4, n_clients=8)

    def issue(client):
        req = HTTPRequest(Method.HEAD, "/index.html", client.client_id)
        yield cluster.submit(req, client, 0.05)

    for c in topo.clients:
        sim.process(issue(c))
    sim.run()
    per_server = [len(s.access_log) for s in cluster.servers]
    assert per_server == [2, 2, 2, 2]


def test_cluster_round_robin_cycles():
    sim, topo, cluster = make_cluster(policy="round_robin", n_clients=8)

    def issue(client):
        req = HTTPRequest(Method.HEAD, "/index.html", client.client_id)
        yield cluster.submit(req, client, 0.05)

    for c in topo.clients:
        sim.process(issue(c))
    sim.run()
    assert [len(s.access_log) for s in cluster.servers] == [2, 2, 2, 2]


def test_cluster_combined_log_sorted():
    sim, topo, cluster = make_cluster(n_clients=6)

    def issue(client, delay):
        yield sim.timeout(delay)
        req = HTTPRequest(Method.HEAD, "/index.html", client.client_id)
        yield cluster.submit(req, client, 0.05)

    for i, c in enumerate(topo.clients[:6]):
        sim.process(issue(c, delay=0.01 * (5 - i)))
    sim.run()
    merged = cluster.combined_log()
    times = [r.arrival_time for r in merged.records]
    assert times == sorted(times)
    assert len(merged) == 6


def test_cluster_validation():
    sim = Simulator()
    with pytest.raises(Exception):
        LoadBalancedCluster(sim, [])
    sim2, topo, cluster = make_cluster()
    with pytest.raises(ValueError):
        LoadBalancedCluster(sim2, cluster.servers, policy="random")


# -- monitor ---------------------------------------------------------------------


def test_monitor_samples_all_probes():
    sim, topo, server = build_world()
    monitor = ResourceMonitor(sim, server, interval_s=0.5)
    monitor.start()

    def issue(client):
        req = HTTPRequest(Method.GET, "/big.tar.gz", client.client_id)
        yield server.submit(req, client, 0.05)

    for c in topo.clients:
        sim.process(issue(c))
    sim.run(until=5.0)
    monitor.stop()
    sim.run()
    for probe in ("cpu_util", "memory_bytes", "disk_util", "network_Bps", "pending"):
        assert len(monitor.trace.probe(probe)) >= 9


def test_monitor_network_probe_sees_transfer():
    sim, topo, server = build_world(server_access_bps=1e6)
    monitor = ResourceMonitor(sim, server, interval_s=0.1)
    monitor.start()

    def issue(client):
        req = HTTPRequest(Method.GET, "/big.tar.gz", client.client_id)
        yield server.submit(req, client, 0.05)

    sim.process(issue(topo.clients[0]))
    sim.run(until=2.0)
    assert monitor.peak("network_Bps") > 1e5


def test_monitor_stop_from_within_sample_sticks():
    """stop() called by code running inside sample() must end the
    cycle — _tick may not silently re-arm afterwards."""
    sim, topo, server = build_world()
    monitor = ResourceMonitor(sim, server, interval_s=1.0)
    original_sample = monitor.sample

    def stopping_sample():
        original_sample()
        if sim.now >= 2.0:
            monitor.stop()

    monitor.sample = stopping_sample
    monitor.start()
    sim.run(until=10.0)
    assert len(monitor.trace.probe("pending")) == 2  # t=1 and t=2, then stopped


def test_monitor_stop_start_cycle_resumes_sampling():
    sim, topo, server = build_world()
    monitor = ResourceMonitor(sim, server, interval_s=1.0)
    monitor.start()
    sim.run(until=2.5)
    monitor.stop()
    sim.run(until=5.5)
    monitor.start()
    sim.run(until=7.5)
    monitor.stop()
    sim.run()
    # samples at t=1,2 then t=6.5,7.5 (restart re-bases the interval)
    assert len(monitor.trace.probe("pending")) == 4


def test_monitor_start_idempotent_and_mean():
    sim, topo, server = build_world()
    monitor = ResourceMonitor(sim, server, interval_s=1.0)
    monitor.start()
    monitor.start()
    sim.run(until=3.0)
    assert monitor.mean("pending") == 0.0
    assert monitor.peak("nonexistent") == 0.0


def test_monitor_validation():
    sim, topo, server = build_world()
    with pytest.raises(ValueError):
        ResourceMonitor(sim, server, interval_s=0)


# -- access log analyses ------------------------------------------------------------


def make_log_with(times_mfc, times_bg):
    log = AccessLog()
    for i, t in enumerate(times_mfc):
        req = HTTPRequest(Method.GET, "/x", f"m{i}", is_mfc=True)
        log.log(req, arrival_time=t, status=Status.OK, bytes_sent=10)
    for i, t in enumerate(times_bg):
        req = HTTPRequest(Method.GET, "/x", f"b{i}", is_mfc=False)
        log.log(req, arrival_time=t, status=Status.OK, bytes_sent=10)
    return log


def test_spread_middle_fraction():
    # 10 arrivals spread over 9s, outliers at both ends
    times = [0.0] + [4.0 + 0.1 * i for i in range(8)] + [9.0]
    log = make_log_with(times, [])
    spread = log.spread_middle_fraction(log.records, fraction=0.8)
    assert spread == pytest.approx(0.7, abs=0.01)


def test_spread_of_single_record_is_zero():
    log = make_log_with([1.0], [])
    assert log.spread_middle_fraction(log.records) == 0.0


def test_background_rate_and_share():
    log = make_log_with([1.0, 2.0], [0.5, 1.5, 2.5, 3.5])
    assert log.background_rate(0.0, 4.0) == pytest.approx(1.0)
    assert log.mfc_traffic_share(0.0, 4.0) == pytest.approx(2 / 6)


def test_window_filters():
    log = make_log_with([1.0, 5.0], [2.0])
    window = log.in_window(0.0, 3.0)
    assert len(window) == 2
    assert len(log.mfc_records(window)) == 1
    assert len(log.background_records()) == 1


def test_arrival_offsets():
    log = make_log_with([3.0, 1.0, 2.0], [])
    assert log.arrival_offsets(log.records) == [0.0, 1.0, 2.0]


def test_log_validation():
    log = make_log_with([1.0], [])
    with pytest.raises(ValueError):
        log.spread_middle_fraction(log.records, fraction=0.0)
    with pytest.raises(ValueError):
        log.background_rate(2.0, 1.0)


# -- presets ---------------------------------------------------------------------


def test_all_presets_build_valid_specs():
    for scenario in all_cooperating_scenarios():
        scenario.server_spec.validate()
        assert len(scenario.site) >= 3
        assert scenario.server_access_bps > 0


def test_lab_preset_backends():
    assert lab_validation_server("fastcgi").server_spec.backend.kind == "fastcgi"
    assert lab_validation_server().server_spec.backend.kind == "mongrel"


def test_qtnp_has_contention_point():
    assert qtnp_server().server_spec.db.contention_point_s > 0


def test_qtp_is_a_16_box_cluster():
    assert qtp_cluster().n_servers == 16


def test_univ2_has_thrash_artifact():
    assert univ2_server().server_spec.accept_thrash_threshold is not None


def test_univ3_has_no_query_cache():
    assert univ3_server().server_spec.db.query_cache_bytes == 0


def test_scenario_with_background():
    s = univ3_server().with_background(12.5)
    assert s.background_rps == 12.5
