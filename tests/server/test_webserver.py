"""Tests for the full web-server request pipeline."""

import pytest

from repro.content.objects import ContentType, WebObject
from repro.content.site import SiteContent, minimal_site
from repro.server.http import HTTPRequest, Method, Status, HEADER_BYTES
from repro.server.resources import MIB, ServerSpec
from repro.server.backends import BackendSpec

from tests.server.conftest import build_world, fetch


def test_head_request_returns_header_bytes(world):
    sim, topo, server = world
    resp = fetch(sim, server, topo.clients[0], "/index.html", Method.HEAD)
    assert resp.status is Status.OK
    assert resp.bytes_transferred == HEADER_BYTES
    assert resp.server_side_duration < 0.1


def test_unknown_path_404(world):
    sim, topo, server = world
    resp = fetch(sim, server, topo.clients[0], "/ghost.html")
    assert resp.status is Status.NOT_FOUND


def test_static_get_transfers_object_bytes(world):
    sim, topo, server = world
    resp = fetch(sim, server, topo.clients[0], "/big.tar.gz")
    assert resp.status is Status.OK
    assert resp.bytes_transferred == pytest.approx(150_000.0)


def test_object_cache_hit_skips_disk():
    sim, topo, server = build_world()
    c = topo.clients[0]
    fetch(sim, server, c, "/big.tar.gz")
    disk_after_first = server.resources.disk.busy_integral()
    assert disk_after_first > 0
    fetch(sim, server, c, "/big.tar.gz")
    assert server.resources.disk.busy_integral() == pytest.approx(disk_after_first)
    assert server.object_cache.hits == 1


def test_query_goes_through_database(world):
    sim, topo, server = world
    resp = fetch(sim, server, topo.clients[0], "/cgi-bin/q?x=1")
    assert resp.status is Status.OK
    assert server.database.queries_executed == 1


def test_query_cache_speeds_up_repeat(world):
    sim, topo, server = world
    first = fetch(sim, server, topo.clients[0], "/cgi-bin/q?x=1")
    second = fetch(sim, server, topo.clients[1], "/cgi-bin/q?x=1")
    assert second.server_side_duration < first.server_side_duration


def test_worker_pool_serializes():
    spec = ServerSpec(max_workers=1, head_cpu_s=0.1)
    sim, topo, server = build_world(spec=spec)
    done = []

    def issue(client):
        req = HTTPRequest(Method.HEAD, "/index.html", client.client_id)
        resp = yield server.submit(req, client, 0.05)
        done.append((client.client_id, sim.now))

    for c in topo.clients[:2]:
        sim.process(issue(c))
    sim.run()
    t0, t1 = done[0][1], done[1][1]
    # second request had to wait ~one full service time for the worker
    assert t1 - t0 > 0.09


def test_listen_backlog_refuses_with_503():
    spec = ServerSpec(max_workers=1, listen_backlog=2, head_cpu_s=1.0)
    sim, topo, server = build_world(spec=spec, n_clients=6)
    responses = []

    def issue(client):
        req = HTTPRequest(Method.HEAD, "/index.html", client.client_id)
        resp = yield server.submit(req, client, 0.05)
        responses.append(resp)

    for c in topo.clients:
        sim.process(issue(c))
    sim.run()
    statuses = sorted(r.status for r in responses)
    assert statuses.count(Status.SERVICE_UNAVAILABLE) == 3  # 1 running + 2 queued
    assert server.refused_requests == 3


def test_accept_thrash_engages_above_threshold():
    def run(n_clients, threshold):
        spec = ServerSpec(
            max_workers=500,
            accept_thrash_threshold=threshold,
            accept_thrash_s=0.2,
            head_cpu_s=0.0001,
        )
        sim, topo, server = build_world(spec=spec, n_clients=n_clients)
        durations = []

        def issue(client):
            req = HTTPRequest(Method.HEAD, "/index.html", client.client_id)
            resp = yield server.submit(req, client, 0.05)
            durations.append(resp.server_side_duration)

        for c in topo.clients:
            sim.process(issue(c))
        sim.run()
        return sorted(durations)

    below = run(10, threshold=20)
    above = run(40, threshold=20)
    # below the burst threshold nobody pays; above it the stall is
    # uniform — even the fastest response carries the ~0.2 s penalty
    assert below[len(below) // 2] < 0.1
    assert above[0] > below[len(below) // 2] + 0.15
    assert above[len(above) // 2] > 0.2


def test_thrash_is_sticky_until_burst_drains():
    spec = ServerSpec(
        accept_thrash_threshold=5, accept_thrash_s=0.1, head_cpu_s=0.0001
    )
    sim, topo, server = build_world(spec=spec, n_clients=8)

    def issue(client):
        req = HTTPRequest(Method.HEAD, "/index.html", client.client_id)
        yield server.submit(req, client, 0.05)

    for c in topo.clients:
        sim.process(issue(c))
    sim.run()
    assert server._thrashing  # burst of 8 > 5 and nothing has drained it
    # a lone request long after the burst clears the window
    def late(client):
        yield sim.timeout(10.0)
        req = HTTPRequest(Method.HEAD, "/index.html", client.client_id)
        yield server.submit(req, client, 0.05)

    sim.process(late(topo.clients[0]))
    sim.run()
    assert not server._thrashing


def test_memory_accounting_per_request():
    spec = ServerSpec(per_request_memory_bytes=10 * MIB, head_cpu_s=0.5)
    sim, topo, server = build_world(spec=spec, n_clients=4)

    def issue(client):
        req = HTTPRequest(Method.HEAD, "/index.html", client.client_id)
        yield server.submit(req, client, 0.05)

    for c in topo.clients:
        sim.process(issue(c))
    sim.run(until=0.1)
    # 4 in-flight requests → 40 MiB above baseline (single core: all
    # queued requests hold a worker+memory since workers are plentiful)
    assert server.resources.memory.level == pytest.approx(
        spec.baseline_memory_bytes + 4 * 10 * MIB
    )
    sim.run()
    assert server.resources.memory.level == pytest.approx(spec.baseline_memory_bytes)


def test_access_log_records_arrivals_and_flags():
    sim, topo, server = build_world()
    c = topo.clients[0]
    req = HTTPRequest(Method.GET, "/index.html", c.client_id, is_mfc=True)
    sim.run_until_complete(server.submit(req, c, 0.05))
    assert len(server.access_log) == 1
    record = server.access_log.records[0]
    assert record.is_mfc and record.status is Status.OK
    assert record.arrival_time == 0.0
    assert record.completion_time > 0


def test_pending_counter_returns_to_zero(world):
    sim, topo, server = world
    fetch(sim, server, topo.clients[0], "/index.html")
    assert server.pending_requests == 0


# -- write path (POST / the Upload stage) ---------------------------------------


def test_post_to_dynamic_endpoint_runs_backend_and_journals_disk(world):
    sim, topo, server = world
    c = topo.clients[0]
    req = HTTPRequest(
        Method.POST, "/cgi-bin/q?x=1", c.client_id, body_bytes=64 * 1024.0
    )
    resp = sim.run_until_complete(server.submit(req, c, 0.05))
    assert resp.status is Status.OK
    assert resp.bytes_transferred == HEADER_BYTES  # ack only
    assert server.database.queries_executed == 1
    # the body journal hit the disk
    assert server.resources.disk.busy_integral() > 0


def test_post_to_static_object_is_method_not_allowed(world):
    sim, topo, server = world
    c = topo.clients[0]
    req = HTTPRequest(Method.POST, "/big.tar.gz", c.client_id, body_bytes=1024.0)
    resp = sim.run_until_complete(server.submit(req, c, 0.05))
    assert resp.status is Status.METHOD_NOT_ALLOWED
    assert server.database.queries_executed == 0


def test_post_body_upload_pays_transfer_time(world):
    sim, topo, server = world
    small = HTTPRequest(Method.POST, "/cgi-bin/q?x=1", "c0", body_bytes=1024.0)
    large = HTTPRequest(
        Method.POST, "/cgi-bin/q?x=1", "c1", body_bytes=4_000_000.0
    )
    t_small = sim.run_until_complete(
        server.submit(small, topo.clients[0], 0.05)
    ).server_side_duration
    t_large = sim.run_until_complete(
        server.submit(large, topo.clients[1], 0.05)
    ).server_side_duration
    # the 4 MB body must cross the network and the disk journal
    assert t_large > t_small + 0.01


def test_post_never_populates_response_cache():
    spec = ServerSpec(response_cache_bytes=64 * MIB)
    sim, topo, server = build_world(spec=spec)
    c = topo.clients[0]
    req = HTTPRequest(Method.POST, "/cgi-bin/q?x=1", c.client_id, body_bytes=100.0)
    sim.run_until_complete(server.submit(req, c, 0.05))
    # a write is a side effect, not a cacheable response
    assert not server.response_cache.lookup("/cgi-bin/q?x=1")


# -- cache busting (the CacheBust stage) ----------------------------------------


def test_cache_bust_resolves_underlying_object(world):
    sim, topo, server = world
    resp = fetch(sim, server, topo.clients[0], "/big.tar.gz?mfc-cb=0")
    assert resp.status is Status.OK
    assert resp.bytes_transferred == pytest.approx(150_000.0)


def test_cache_bust_suffix_on_unknown_path_is_404(world):
    sim, topo, server = world
    resp = fetch(sim, server, topo.clients[0], "/ghost.bin?mfc-cb=3")
    assert resp.status is Status.NOT_FOUND


def test_cache_bust_always_hits_disk():
    sim, topo, server = build_world()
    c = topo.clients[0]
    fetch(sim, server, c, "/big.tar.gz?mfc-cb=0")
    first = server.resources.disk.busy_integral()
    assert first > 0
    fetch(sim, server, c, "/big.tar.gz?mfc-cb=1")
    second = server.resources.disk.busy_integral()
    assert second > first
    # and it never warmed the object cache for the plain path either
    fetch(sim, server, c, "/big.tar.gz")
    assert server.resources.disk.busy_integral() > second
    assert server.object_cache.hits == 0


def test_plain_requests_unaffected_by_cache_busting(world):
    sim, topo, server = world
    c = topo.clients[0]
    fetch(sim, server, c, "/big.tar.gz")            # warms the cache
    busy = server.resources.disk.busy_integral()
    fetch(sim, server, c, "/big.tar.gz?mfc-cb=7")   # busts around it
    fetch(sim, server, c, "/big.tar.gz")            # cache hit again
    assert server.object_cache.hits == 1
    assert server.resources.disk.busy_integral() > busy


def test_large_object_contention_raises_response_time():
    """The Figure 5 mechanism: same object, response time rises with
    crowd size, CPU and disk stay quiet."""
    site = minimal_site(large_object_bytes=100 * 1024)
    spec = ServerSpec(request_parse_cpu_s=0.0002)

    def run(n):
        # LAN clients (2 ms RTT) like the paper's §3.2 setup, so slow
        # start does not dominate and the access link is the bottleneck
        sim, topo, server = build_world(
            spec=spec, site=site, server_access_bps=12.5e6, n_clients=n, rtt=0.002
        )
        durations = []

        def issue(client):
            req = HTTPRequest(Method.GET, "/big.tar.gz", client.client_id)
            resp = yield server.submit(req, client, 0.002)
            durations.append(resp.server_side_duration)
        # warm the object cache so disk is out of the picture
        fetch(sim, server, topo.clients[0], "/big.tar.gz", rtt=0.002)
        for c in topo.clients:
            sim.process(issue(c))
        sim.run()
        return sorted(durations)[len(durations) // 2], server

    median_small, _ = run(2)
    median_large, server = run(30)
    assert median_large > median_small * 3
    # CPU stayed a minor player: the constraint is the access link
    assert server.resources.cpu.utilization() < 0.15
