"""Tests for events, timeouts and condition combinators."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator, SimulationError, Timeout


def test_event_lifecycle():
    sim = Simulator()
    ev = sim.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(value=7)
    assert ev.triggered and not ev.processed
    sim.run()
    assert ev.processed and ev.ok and ev.value == 7


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_ok_before_fire_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_unwaited_failure_surfaces_at_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_subscribe_after_processed_still_fires():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(value="x")
    sim.run()
    seen = []
    ev.subscribe(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["x"]


def test_unsubscribe_removes_pending_callback():
    sim = Simulator()
    ev = sim.event()
    seen = []
    cb = lambda e: seen.append(1)  # noqa: E731
    ev.subscribe(cb)
    assert ev.unsubscribe(cb)
    ev.succeed()
    sim.run()
    assert seen == []


def test_timeout_negative_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Timeout(sim, -0.5)


def test_timeout_carries_value():
    sim = Simulator()
    t = sim.timeout(2.0, value="done")
    sim.run()
    assert t.value == "done"
    assert sim.now == 2.0


def test_allof_waits_for_all():
    sim = Simulator()
    a, b = sim.timeout(1.0, "a"), sim.timeout(3.0, "b")
    cond = AllOf(sim, [a, b])
    sim.run()
    assert cond.processed and cond.ok
    assert set(cond.value.values()) == {"a", "b"}
    # AllOf completes when the later child fires
    assert sim.now == 3.0


def test_anyof_fires_on_first():
    sim = Simulator()
    a, b = sim.timeout(1.0, "a"), sim.timeout(3.0, "b")
    cond = AnyOf(sim, [a, b])

    done_at = []
    cond.subscribe(lambda e: done_at.append(sim.now))
    sim.run()
    assert done_at == [1.0]
    assert list(cond.value.values()) == ["a"]


def test_allof_empty_fires_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    sim.run()
    assert cond.processed and cond.value == {}


def test_allof_propagates_failure():
    sim = Simulator()
    good = sim.timeout(1.0)
    bad = sim.event()
    bad.fail(RuntimeError("child failed"), delay=0.5)
    cond = AllOf(sim, [good, bad])

    def waiter(sim, cond):
        with pytest.raises(RuntimeError, match="child failed"):
            yield cond

    proc = sim.process(waiter(sim, cond))
    sim.run_until_complete(proc)


def test_anyof_failure_of_first_child():
    sim = Simulator()
    bad = sim.event()
    bad.fail(RuntimeError("x"), delay=0.1)
    slow = sim.timeout(5.0)
    cond = AnyOf(sim, [bad, slow])

    def waiter():
        with pytest.raises(RuntimeError):
            yield cond

    sim.run_until_complete(sim.process(waiter()))


def test_condition_rejects_non_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AllOf(sim, [42])  # type: ignore[list-item]
