"""Tests for the simulation kernel event loop."""

import pytest

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_in_runs_at_right_time():
    sim = Simulator()
    seen = []
    sim.call_in(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]


def test_call_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(3.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.0]


def test_call_at_past_raises():
    sim = Simulator()
    sim.call_in(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_in(2.0, lambda: order.append("b"))
    sim.call_in(1.0, lambda: order.append("a"))
    sim.call_in(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_fifo():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.call_in(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["first", "second", "third"]


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    sim.call_in(100.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0
    sim.run()
    assert sim.now == 100.0


def test_run_until_with_no_events_advances_clock():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_negative_delay_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.schedule(ev, delay=-1.0)


def test_peek_reports_next_timestamp():
    sim = Simulator()
    assert sim.peek() is None
    sim.call_in(7.0, lambda: None)
    assert sim.peek() == 7.0


def test_run_until_complete_returns_value():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(1.0)
        return 99

    proc = sim.process(body(sim))
    assert sim.run_until_complete(proc) == 99
    assert sim.now == 1.0


def test_run_until_complete_deadlock_detection():
    sim = Simulator()

    def body(sim):
        yield sim.event()  # never fires

    proc = sim.process(body(sim))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(proc)


def test_run_until_complete_time_limit():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(1e12)

    proc = sim.process(body(sim))
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_complete(proc, limit=100.0)


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as err:
            errors.append(str(err))

    sim.call_in(1.0, reenter)
    sim.run()
    assert errors == ["run() is not reentrant"]


def test_run_until_complete_shares_reentrancy_guard():
    sim = Simulator()
    errors = []

    def body(sim):
        yield sim.timeout(2.0)
        return "done"

    proc = sim.process(body(sim))

    def reenter():
        try:
            sim.run_until_complete(proc)
        except SimulationError as err:
            errors.append(str(err))

    sim.call_in(1.0, reenter)
    assert sim.run_until_complete(proc) == "done"
    assert errors == ["run() is not reentrant"]


def test_events_at_exactly_until_fire():
    sim = Simulator()
    seen = []
    sim.call_in(5.0, lambda: seen.append("at"))
    sim.call_in(5.0, lambda: sim.call_in(0.0, lambda: seen.append("cascade")))
    sim.call_in(5.1, lambda: seen.append("late"))
    sim.run(until=5.0)
    # the same-timestamp cascade at t=5.0 drains; the later event waits
    assert seen == ["at", "cascade"]
    assert sim.now == 5.0


def test_timer_inactive_after_firing():
    sim = Simulator()
    timer = sim.call_in(1.0, lambda: None)
    assert timer.active
    sim.run()
    assert not timer.active  # fired timers are no longer armed


def test_timer_cancel_is_noop_at_fire_time():
    sim = Simulator()
    seen = []
    timer = sim.call_in(1.0, lambda: seen.append("fired"))
    assert timer.active
    timer.cancel()
    assert not timer.active
    sim.run()
    assert seen == []
    assert sim.now == 1.0  # the heap entry still advanced the clock


def test_timers_and_events_interleave_fifo():
    sim = Simulator()
    order = []
    sim.call_in(1.0, lambda: order.append("timer1"))
    sim.timeout(1.0).subscribe(lambda _ev: order.append("event"))
    sim.call_in(1.0, lambda: order.append("timer2"))
    sim.run()
    assert order == ["timer1", "event", "timer2"]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.call_in(2.0, lambda: seen.append(("inner", sim.now)))

    sim.call_in(1.0, outer)
    sim.run()
    assert seen == [("outer", 1.0), ("inner", 3.0)]


# -- instant-end callbacks ----------------------------------------------------


def test_instant_end_runs_after_full_same_timestamp_batch():
    sim = Simulator()
    order = []
    sim.call_in(1.0, lambda: (order.append("a"), sim.at_instant_end(lambda: order.append(("flush", sim.now)))))
    sim.call_in(1.0, lambda: order.append("b"))
    sim.call_in(2.0, lambda: order.append("later"))
    sim.run()
    # the callback registered by "a" waits for "b" (same instant) but
    # runs before the clock reaches t=2
    assert order == ["a", "b", ("flush", 1.0), "later"]


def test_instant_end_cascade_drains_before_clock_advances():
    sim = Simulator()
    order = []

    def flush():
        order.append(("flush", sim.now))
        # flush work at the same instant: must run before t=2
        sim.call_in(0.0, lambda: order.append(("cascade", sim.now)))

    sim.call_in(1.0, lambda: sim.at_instant_end(flush))
    sim.call_in(2.0, lambda: order.append(("later", sim.now)))
    sim.run()
    assert order == [("flush", 1.0), ("cascade", 1.0), ("later", 2.0)]


def test_instant_end_callbacks_can_reregister():
    sim = Simulator()
    hits = []

    def flush():
        hits.append(sim.now)
        if len(hits) < 3:
            sim.at_instant_end(flush)  # runs again within this instant

    sim.call_in(1.0, lambda: sim.at_instant_end(flush))
    sim.run()
    assert hits == [1.0, 1.0, 1.0]


def test_instant_end_runs_once_per_registration():
    sim = Simulator()
    hits = []
    sim.call_in(1.0, lambda: sim.at_instant_end(lambda: hits.append(sim.now)))
    sim.call_in(2.0, lambda: None)
    sim.run()
    assert hits == [1.0]


def test_instant_end_fires_with_run_until():
    sim = Simulator()
    hits = []
    sim.call_in(5.0, lambda: sim.at_instant_end(lambda: hits.append(sim.now)))
    sim.call_in(7.0, lambda: hits.append("late"))
    sim.run(until=5.0)
    # the admitted instant's end-of-instant work runs even though the
    # next event lies beyond `until`
    assert hits == [5.0]
    assert sim.now == 5.0


def test_instant_end_fires_in_run_until_complete():
    sim = Simulator()
    hits = []

    def body(sim):
        yield 1.0
        sim.at_instant_end(lambda: hits.append(sim.now))
        yield 1.0
        return "done"

    proc = sim.process(body(sim))
    assert sim.run_until_complete(proc) == "done"
    assert hits == [1.0]


def test_instant_end_drains_when_awaited_process_finishes_mid_instant():
    """A callback registered at the awaited process's final instant
    still runs before run_until_complete returns — nothing may stay
    armed-but-stranded (e.g. a network flush) after the run."""
    sim = Simulator()
    hits = []

    def body(sim):
        yield 1.0
        sim.at_instant_end(lambda: hits.append(sim.now))
        return "done"

    proc = sim.process(body(sim))
    assert sim.run_until_complete(proc) == "done"
    assert hits == [1.0]
    assert sim._instant_cbs == []


def test_instant_end_fires_in_step():
    sim = Simulator()
    hits = []
    sim.call_in(1.0, lambda: sim.at_instant_end(lambda: hits.append(sim.now)))
    sim.call_in(1.0, lambda: hits.append("batch"))
    sim.call_in(2.0, lambda: hits.append("later"))
    sim.step()
    assert hits == []  # instant not drained yet: "batch" still pending
    sim.step()
    assert hits == ["batch", 1.0]
    sim.step()
    assert hits == ["batch", 1.0, "later"]
