"""Differential property suite: timer-wheel kernel vs. frozen seed.

Each test instance replays a block of randomly generated operation
sequences (schedule / cancel / reschedule / duplicate instants /
cancel-inside-callback / negative delays / Events / instant-end) on
both the live kernel and the frozen seed copy and asserts the full
observation logs match — fire order, ``now`` at every fire, raised
error types, final clock.  See :mod:`repro.sim.difftest`.

The default matrix runs 250 sequences (10 blocks x 25) in a few
hundred milliseconds.  ``REPRO_DIFFTEST_CASES`` scales the per-block
count up for CI soak runs.
"""

from __future__ import annotations

import os

import pytest

from repro.sim import difftest

#: sequences per parametrized block (x10 blocks)
CASES_PER_BLOCK = int(os.environ.get("REPRO_DIFFTEST_CASES", "25"))

#: disjoint seed ranges so every block explores fresh sequences
BLOCK_SEEDS = [0, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000]


@pytest.mark.parametrize("seed0", BLOCK_SEEDS)
def test_differential_block(seed0: int) -> None:
    # fuzz() alternates run-mode and step-mode drives internally and
    # raises with a shrunken minimal reproducer on the first divergence
    assert difftest.fuzz(CASES_PER_BLOCK, seed0=seed0) == CASES_PER_BLOCK


@pytest.mark.parametrize("seed", [11, 222, 3333])
def test_differential_long_sequences(seed: int) -> None:
    # longer programs raise the odds of deep same-instant cascades and
    # cancel-chains that short blocks rarely reach
    difftest.check_sequence(seed, n_ops=160, mode="run")
    difftest.check_sequence(seed, n_ops=160, mode="step")


def test_generation_is_deterministic() -> None:
    assert difftest.generate_ops(42, 40) == difftest.generate_ops(42, 40)


def test_replay_produces_observations() -> None:
    # guard against the suite going vacuously green: a generated
    # sequence must actually fire callbacks, not just error out
    from repro.sim.kernel import Simulator

    fired = 0
    for seed in range(20):
        log = difftest.replay(Simulator, difftest.generate_ops(seed, 40))
        fired += sum(1 for entry in log if entry[0] == "fire")
    assert fired > 100


def test_shrinker_reduces_and_preserves_divergence() -> None:
    # mutation canary: a kernel whose cancel() silently does nothing
    # must be caught, and the shrinker must hand back a smaller
    # sequence that still diverges
    from repro.sim.kernel import Simulator, Timer

    class BrokenCancelTimer(Timer):
        def cancel(self) -> None:  # pragma: no cover - intentionally wrong
            pass

    class BrokenSim(Simulator):
        def call_in(self, delay, fn):  # type: ignore[override]
            timer = super().call_in(delay, fn)
            return BrokenCancelTimer(timer.sim, timer.when, timer.fn)

    real = difftest.Simulator
    difftest.Simulator = BrokenSim  # type: ignore[misc]
    try:
        for seed in range(50):
            ops = difftest.generate_ops(seed, 40)
            if difftest.mismatch(ops) is not None:
                minimal = difftest.shrink(ops)
                assert len(minimal) <= len(ops)
                assert difftest.mismatch(minimal) is not None
                break
        else:  # pragma: no cover
            pytest.fail("broken cancel was never detected in 50 seeds")
    finally:
        difftest.Simulator = real  # type: ignore[misc]
