"""Edge-case units for the timer-wheel kernel internals.

The differential suite (`test_kernel_differential.py`) asserts the
wheel is observably seed-identical; these tests pin the wheel-specific
mechanics the seed never had — tombstone/epoch accounting, compaction
bounds, the handle arena, FIRED-marker parking — plus the seed-parity
corners called out in the kernel contract (cancel idempotency,
same-instant batching across all three drive loops, reentrancy).
"""

from __future__ import annotations

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.timerwheel import (
    COMPACT_EPOCH_DELTA,
    FIRED,
    TOMBSTONE,
    Timer,
    TimerWheel,
)


# -- cancellation accounting -------------------------------------------------


def test_cancel_is_idempotent_and_bumps_epoch_once() -> None:
    sim = Simulator()
    timer = sim.call_in(1.0, lambda: None)
    before = Timer._cancel_epoch
    timer.cancel()
    timer.cancel()
    timer.cancel()
    assert Timer._cancel_epoch == before + 1
    assert not timer.active


def test_cancel_after_fire_is_a_noop() -> None:
    sim = Simulator()
    fired = []
    timer = sim.call_in(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0]
    before = Timer._cancel_epoch
    timer.cancel()  # slot already drained: nothing to tombstone
    assert Timer._cancel_epoch == before
    assert not timer.active


def test_cancelled_lone_instant_still_advances_clock() -> None:
    # seed parity: a cancelled timer's instant is still visited
    sim = Simulator()
    sim.call_in(1.0, lambda: None).cancel()
    sim.run()
    assert sim.now == 1.0


def test_cancel_duplicate_callback_tombstones_both_copies() -> None:
    # the same function object scheduled twice at one instant: each
    # handle must kill its own copy (cancel scans backwards, so the
    # second handle reaches the second copy first)
    sim = Simulator()
    fired = []

    def cb() -> None:
        fired.append(sim.now)

    t1 = sim.call_in(1.0, cb)
    t2 = sim.call_in(1.0, cb)
    before = Timer._cancel_epoch
    t2.cancel()
    t1.cancel()
    assert Timer._cancel_epoch == before + 2
    sim.run()
    assert fired == []
    assert sim.now == 1.0


def test_cancel_pending_entry_from_same_instant_callback() -> None:
    sim = Simulator()
    fired = []
    handles = {}

    def killer() -> None:
        fired.append("killer")
        handles["victim"].cancel()

    sim.call_in(1.0, killer)
    handles["victim"] = sim.call_in(1.0, lambda: fired.append("victim"))
    sim.call_in(1.0, lambda: fired.append("bystander"))
    sim.run()
    assert fired == ["killer", "bystander"]


def test_active_tracks_pending_state() -> None:
    sim = Simulator()
    lone = sim.call_in(1.0, lambda: None)
    dense_a = sim.call_in(2.0, lambda: None)
    dense_b = sim.call_in(2.0, lambda: None)
    assert lone.active and dense_a.active and dense_b.active
    dense_a.cancel()
    assert not dense_a.active
    assert dense_b.active  # sibling copy untouched
    sim.run()
    assert not lone.active and not dense_b.active


# -- compaction: mass-cancel stays bounded -----------------------------------


def test_mass_cancel_is_reclaimed_by_run_loop() -> None:
    sim = Simulator()
    n = COMPACT_EPOCH_DELTA + 500
    # half dense (one far-future instant), half lone (distinct instants)
    handles = [sim.call_in(50.0, lambda: None) for _ in range(n // 2)]
    handles += [sim.call_in(100.0 + i, lambda: None) for i in range(n - n // 2)]
    assert len(sim._wheel) == n
    for handle in handles:
        handle.cancel()
    # everything pending is a tombstone; the run loop's epoch check
    # compacts before dispatching, so the wheel empties without the
    # clock grinding through thousands of dead instants
    sim.run()
    stats = sim._wheel.stats()
    assert stats["entries"] == 0
    assert stats["slots"] == 0
    assert len(sim._keys) == 0
    assert sim._cancel_seen == Timer._cancel_epoch


def test_explicit_compact_preserves_survivors_and_order() -> None:
    sim = Simulator()
    fired = []
    keep_a = sim.call_in(1.0, lambda: fired.append("a1"))
    sim.call_in(1.0, lambda: fired.append("dead")).cancel()
    sim.call_in(1.0, lambda: fired.append("a2"))
    sim.call_in(2.0, lambda: None).cancel()  # lone tombstone: slot drops
    sim.call_in(3.0, lambda: fired.append("b"))
    removed = sim.compact()
    assert removed == 2
    stats = sim._wheel.stats()
    assert stats["tombstones"] == 0
    assert stats["live"] == 3
    assert keep_a.active
    sim.run()
    assert fired == ["a1", "a2", "b"]
    # compaction dropped instant 2.0 entirely, so the clock never
    # visits it (documented divergence from leaving tombstones in
    # place; only reachable via explicit compact() or >1024 cancels)
    assert sim.now == 3.0


def test_compact_unwraps_single_survivor_bucket() -> None:
    wheel = TimerWheel()
    wheel.push(1.0, TOMBSTONE)
    survivor = lambda: None  # noqa: E731
    wheel.push(1.0, survivor)
    wheel.push(1.0, FIRED)
    assert wheel.compact() == 2
    assert wheel.slots[1.0] is survivor  # demoted back to a lone entry
    assert wheel.keys == [1.0]


# -- same-instant batching across all drive loops ----------------------------


def _batch_scenario(sim: Simulator) -> list:
    log: list = []
    sim.call_in(1.0, lambda: log.append(("t1", sim.now)))
    event = sim.event()
    event.subscribe(lambda _ev: log.append(("ev", sim.now)))
    event.succeed(delay=1.0)
    sim.call_in(1.0, lambda: log.append(("t2", sim.now)))
    sim.call_in(1.0, lambda: sim.at_instant_end(lambda: log.append(("icb", sim.now))))
    sim.call_in(2.0, lambda: log.append(("later", sim.now)))
    return log


EXPECTED_BATCH = [
    ("t1", 1.0),
    ("ev", 1.0),
    ("t2", 1.0),
    ("icb", 1.0),
    ("later", 2.0),
]


def test_same_instant_batch_order_under_run() -> None:
    sim = Simulator()
    log = _batch_scenario(sim)
    sim.run()
    assert log == EXPECTED_BATCH


def test_same_instant_batch_order_under_step() -> None:
    sim = Simulator()
    log = _batch_scenario(sim)
    while sim.peek() is not None:
        sim.step()
    assert log == EXPECTED_BATCH


def test_same_instant_batch_order_under_run_until_complete() -> None:
    sim = Simulator()
    log = _batch_scenario(sim)

    def body():
        yield 3.0

    sim.run_until_complete(sim.process(body()))
    assert log == EXPECTED_BATCH


# -- run_until_complete mid-batch parking ------------------------------------


def test_ruc_parks_unfired_same_instant_remainder() -> None:
    # work scheduled *after* the awaited process completes (by its
    # completion subscribers, at the same instant) must not run during
    # run_until_complete, but must survive, parked, for a later run()
    sim = Simulator()
    log: list = []

    def body():
        yield 1.0

    proc = sim.process(body())
    proc.subscribe(lambda _ev: sim.call_in(0.0, lambda: log.append(("parked", sim.now))))
    sim.run_until_complete(proc)
    assert log == []  # not fired during ruc
    assert sim.peek() == 1.0  # still pending at its instant
    sim.run()
    assert log == [("parked", 1.0)]  # fired at the original instant


def test_ruc_abandoned_bucket_never_refires() -> None:
    # entries dispatched before the awaited process finished are
    # FIRED-marked; a later run() over the leftover bucket must not
    # run them again
    sim = Simulator()
    log: list = []
    sim.call_in(1.0, lambda: log.append("before"))

    def body():
        yield 1.0

    proc = sim.process(body())
    proc.subscribe(lambda _ev: sim.call_in(0.0, lambda: log.append("after")))
    sim.run_until_complete(proc)
    assert log == ["before"]
    sim.run()
    assert log == ["before", "after"]


# -- handle arena ------------------------------------------------------------


def test_process_sleep_handles_are_pooled_and_reused() -> None:
    sim = Simulator()

    def sleeper():
        yield 0.5
        yield 0.5

    sim.run_until_complete(sim.process(sleeper()))
    pool = sim._timer_pool
    assert len(pool) >= 1
    recycled = pool[-1]
    assert recycled.fn is None  # parked handles hold no callback

    def sleeper2():
        yield 0.25

    sim.run_until_complete(sim.process(sleeper2()))
    # the second process drew its sleep handle from the arena and
    # returned it on wake
    assert pool[-1] is recycled


def test_public_handles_are_never_pooled() -> None:
    sim = Simulator()
    timer = sim.call_in(1.0, lambda: None)
    sim.run()
    assert timer not in sim._timer_pool


# -- guards and misc ---------------------------------------------------------


def test_run_reentrancy_guard_from_callback() -> None:
    sim = Simulator()
    caught: list = []

    def reenter() -> None:
        try:
            sim.run()
        except SimulationError as err:
            caught.append(str(err))

    sim.call_in(1.0, reenter)
    sim.run()
    assert caught == ["run() is not reentrant"]


def test_ruc_reentrancy_guard_from_callback() -> None:
    sim = Simulator()
    caught: list = []

    def body():
        yield 1.0

    proc = sim.process(body())

    def reenter() -> None:
        try:
            sim.run_until_complete(proc)
        except SimulationError as err:
            caught.append(str(err))

    sim.call_in(0.5, reenter)
    sim.run_until_complete(proc)
    assert caught == ["run() is not reentrant"]


def test_step_on_empty_raises_indexerror() -> None:
    # seed parity: heappop on an empty heap raised IndexError
    sim = Simulator()
    with pytest.raises(IndexError):
        sim.step()


def test_negative_delay_rejected_with_seed_message() -> None:
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_at(-0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(sim.event(), -0.5)


def test_wheel_reference_push_matches_kernel_inline_push() -> None:
    # TimerWheel.push is the documented reference for the inlined
    # scheduling fast paths: both must build identical structures
    sim = Simulator()
    fn_a, fn_b, fn_c = (lambda: None), (lambda: None), (lambda: None)
    sim.call_in(1.0, fn_a)
    sim.call_in(1.0, fn_b)
    sim.call_in(2.0, fn_c)

    wheel = TimerWheel()
    wheel.push(1.0, fn_a)
    wheel.push(1.0, fn_b)
    wheel.push(2.0, fn_c)

    assert wheel.slots == sim._slots
    assert sorted(wheel.keys) == sorted(sim._keys)
    assert wheel.peek() == sim.peek() == 1.0
    assert len(wheel) == len(sim._wheel) == 3
