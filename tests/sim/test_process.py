"""Tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, Process, Simulator, SimulationError


def test_process_advances_clock():
    sim = Simulator()
    marks = []

    def body(sim):
        yield sim.timeout(1.5)
        marks.append(sim.now)
        yield sim.timeout(2.5)
        marks.append(sim.now)

    sim.process(body(sim))
    sim.run()
    assert marks == [1.5, 4.0]


def test_process_return_value():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(1.0)
        return "result"

    proc = sim.process(body(sim))
    assert sim.run_until_complete(proc) == "result"


def test_process_waits_on_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3.0)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        return value * 2

    proc = sim.process(parent(sim))
    assert sim.run_until_complete(proc) == 84
    assert sim.now == 3.0


def test_yield_receives_event_value():
    sim = Simulator()

    def body(sim):
        got = yield sim.timeout(1.0, value="hello")
        return got

    assert sim.run_until_complete(sim.process(body(sim))) == "hello"


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as err:
            return f"caught {err}"

    assert sim.run_until_complete(sim.process(parent(sim))) == "caught inner"


def test_unwaited_process_exception_raises_at_run():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(body(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_yield_non_event_fails_process():
    sim = Simulator()

    def body(sim):
        yield "not an event"

    proc = sim.process(body(sim))
    with pytest.raises(SimulationError, match="non-event"):
        sim.run_until_complete(proc)


def test_yield_number_sleeps():
    """``yield <seconds>`` is the fast-path equivalent of a timeout."""
    sim = Simulator()
    marks = []

    def body(sim):
        got = yield 1.5
        marks.append((sim.now, got))
        yield 2  # ints sleep too
        marks.append((sim.now, None))

    sim.process(body(sim))
    sim.run()
    assert marks == [(1.5, None), (3.5, None)]


def test_yield_negative_number_fails_process():
    sim = Simulator()

    def body(sim):
        yield -0.5

    proc = sim.process(body(sim))
    with pytest.raises(SimulationError, match="negative sleep"):
        sim.run_until_complete(proc)


def test_interrupt_wakes_number_sleep():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield 100.0
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))
        yield 1.0
        log.append(("resumed", sim.now))

    proc = sim.process(sleeper(sim))
    sim.call_in(5.0, lambda: proc.interrupt("wake"))
    sim.run()
    assert log == [("interrupted", 5.0, "wake"), ("resumed", 6.0)]


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("slept full")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    proc = sim.process(sleeper(sim))
    sim.call_in(5.0, lambda: proc.interrupt("wake up"))
    sim.run()
    assert log == [("interrupted", 5.0, "wake up")]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(1.0)

    proc = sim.process(body(sim))
    sim.run()
    proc.interrupt()  # must not raise
    sim.run()
    assert proc.processed


def test_interrupted_process_can_continue():
    sim = Simulator()

    def body(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        return sim.now

    proc = sim.process(body(sim))
    sim.call_in(2.0, proc.interrupt)
    assert sim.run_until_complete(proc) == 3.0


def test_is_alive():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(1.0)

    proc = sim.process(body(sim))
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_many_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        order.append(name)

    for i in range(10):
        sim.process(worker(sim, f"p{i}", delay=1.0 + (i % 3)))
    sim.run()
    expected = sorted(range(10), key=lambda i: (1.0 + (i % 3), i))
    assert order == [f"p{i}" for i in expected]
