"""Tests for Resource, PriorityResource, Container and Store."""

import pytest

from repro.sim import Container, PriorityResource, Resource, Simulator, SimulationError, Store


def hold(sim, res, duration, log, name):
    req = res.request()
    yield req
    log.append((name, "start", sim.now))
    yield sim.timeout(duration)
    res.release(req)
    log.append((name, "end", sim.now))


def test_resource_capacity_one_serializes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []
    sim.process(hold(sim, res, 2.0, log, "a"))
    sim.process(hold(sim, res, 2.0, log, "b"))
    sim.run()
    assert log == [
        ("a", "start", 0.0),
        ("a", "end", 2.0),
        ("b", "start", 2.0),
        ("b", "end", 4.0),
    ]


def test_resource_parallelism_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    log = []
    for i in range(5):
        sim.process(hold(sim, res, 1.0, log, f"p{i}"))
    sim.run()
    starts = {name: t for name, kind, t in log if kind == "start"}
    assert [starts[f"p{i}"] for i in range(5)] == [0.0, 0.0, 0.0, 1.0, 1.0]


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def grab(name):
        req = res.request()
        yield req
        order.append(name)
        yield sim.timeout(1.0)
        res.release(req)

    for name in "abcde":
        sim.process(grab(name))
    sim.run()
    assert order == list("abcde")


def test_resource_in_use_and_queue_len():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []
    for i in range(4):
        sim.process(hold(sim, res, 10.0, log, str(i)))
    sim.run(until=1.0)
    assert res.in_use == 2
    assert res.queue_len == 2
    assert res.peak_queue_len == 2


def test_resource_utilization_tracking():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []
    sim.process(hold(sim, res, 5.0, log, "x"))
    sim.run()
    sim.run(until=10.0)
    # busy 5 s out of 10 s → 50%
    assert res.utilization() == pytest.approx(0.5)


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_double_release_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    sim.run()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_cancel_queued_request_skips_grant():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    third = res.request()
    second.cancel()
    sim.run()
    res.release(first)
    sim.run()
    assert third.processed
    assert not second.processed


def test_release_ungranted_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    queued = res.request()
    with pytest.raises(SimulationError):
        res.release(queued)


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def grab(name, prio):
        req = res.request(priority=prio)
        yield req
        order.append(name)
        yield sim.timeout(1.0)
        res.release(req)

    def spawn():
        # occupy first, then queue others while busy
        yield sim.timeout(0)

    blocker = res.request()
    sim.process(grab("low", 5))
    sim.process(grab("high", 1))
    sim.process(grab("mid", 3))
    sim.run()
    res.release(blocker)
    sim.run()
    assert order == ["high", "mid", "low"]


def test_priority_fifo_within_same_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def grab(name):
        req = res.request(priority=1)
        yield req
        order.append(name)
        yield sim.timeout(1.0)
        res.release(req)

    blocker = res.request()
    for name in "abc":
        sim.process(grab(name))
    sim.run()
    res.release(blocker)
    sim.run()
    assert order == ["a", "b", "c"]


def test_container_put_get():
    sim = Simulator()
    box = Container(sim, capacity=100.0, init=10.0)
    got = box.get(5.0)
    sim.run()
    assert got.processed and box.level == 5.0
    box.put(20.0)
    assert box.level == 25.0
    assert box.peak_level == 25.0


def test_container_get_blocks_until_put():
    sim = Simulator()
    box = Container(sim, capacity=100.0)
    woke = []

    def getter(sim):
        yield box.get(30.0)
        woke.append(sim.now)

    sim.process(getter(sim))
    sim.call_in(4.0, lambda: box.put(30.0))
    sim.run()
    assert woke == [4.0]


def test_container_overflow_raises():
    sim = Simulator()
    box = Container(sim, capacity=10.0, init=5.0)
    with pytest.raises(SimulationError):
        box.put(6.0)


def test_container_try_get():
    sim = Simulator()
    box = Container(sim, init=3.0, capacity=10.0)
    assert box.try_get(2.0)
    assert not box.try_get(2.0)
    assert box.level == 1.0


def test_container_fifo_fairness():
    sim = Simulator()
    box = Container(sim, capacity=100.0)
    order = []

    def getter(name, amount):
        yield box.get(amount)
        order.append(name)

    sim.process(getter("big", 50.0))
    sim.process(getter("small", 1.0))
    sim.call_in(1.0, lambda: box.put(60.0))
    sim.run()
    # FIFO: the big request at the head is served first even though the
    # small one could have been satisfied earlier.
    assert order == ["big", "small"]


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    g1, g2 = store.get(), store.get()
    sim.run()
    assert (g1.value, g2.value) == ("a", "b")


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim):
        item = yield store.get()
        got.append((item, sim.now))

    sim.process(getter(sim))
    sim.call_in(2.0, lambda: store.put("late"))
    sim.run()
    assert got == [("late", 2.0)]


def test_store_capacity_drops_when_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.put(1) and store.put(2)
    assert not store.put(3)
    assert len(store) == 2
