"""Tests for RNG streams and tracing."""

from repro.sim import Probe, RNGRegistry, Simulator, TraceLog


def test_same_seed_same_stream():
    a = RNGRegistry(7).stream("net.latency")
    b = RNGRegistry(7).stream("net.latency")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    reg = RNGRegistry(7)
    s1 = [reg.stream("one").random() for _ in range(5)]
    s2 = [reg.stream("two").random() for _ in range(5)]
    assert s1 != s2


def test_stream_order_does_not_matter():
    r1 = RNGRegistry(3)
    r2 = RNGRegistry(3)
    # create in opposite orders
    a_first = r1.stream("a").random()
    r2.stream("b")
    a_second = r2.stream("a").random()
    assert a_first == a_second


def test_different_seeds_differ():
    assert RNGRegistry(1).stream("x").random() != RNGRegistry(2).stream("x").random()


def test_fork_is_disjoint():
    reg = RNGRegistry(9)
    child = reg.fork("site-17")
    assert reg.stream("x").random() != child.stream("x").random()


def test_fork_deterministic():
    a = RNGRegistry(9).fork("site-17").stream("x").random()
    b = RNGRegistry(9).fork("site-17").stream("x").random()
    assert a == b


def test_probe_records_with_timestamps():
    sim = Simulator()
    probe = Probe(sim, "rt")
    sim.call_in(1.0, lambda: probe.record(10))
    sim.call_in(2.0, lambda: probe.record(20))
    sim.run()
    assert probe.series() == [(1.0, 10), (2.0, 20)]
    assert probe.values() == [10, 20]
    assert probe.last() == 20
    assert len(probe) == 2


def test_probe_window():
    sim = Simulator()
    probe = Probe(sim, "x")
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.call_in(t, lambda v=t: probe.record(v))
    sim.run()
    assert [s.value for s in probe.window(2.0, 4.0)] == [2.0, 3.0]


def test_probe_last_default():
    sim = Simulator()
    assert Probe(sim, "e").last(default="none") == "none"


def test_tracelog_probe_registry():
    sim = Simulator()
    trace = TraceLog(sim)
    trace.record("cpu", 0.5)
    trace.record("mem", 100)
    trace.record("cpu", 0.7)
    assert trace.names() == ["cpu", "mem"]
    assert "cpu" in trace
    assert trace.probe("cpu").values() == [0.5, 0.7]
    assert len(list(trace)) == 2
