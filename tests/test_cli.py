"""Tests for the command-line interface."""

import pytest

from repro.cli import SCENARIOS, build_parser, main


def test_list_prints_all_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out


def test_list_describes_server_model_and_notes(capsys):
    main(["list"])
    out = capsys.readouterr().out
    # one-line description: server model (boxes, cores, access link)
    # plus the scenario notes
    assert "16x qtp (8 core, 10000 Mbps)" in out
    assert "Table 1 target." in out
    assert "Figure 5/6 validation target" in out


def test_run_quiet_prints_stage_lines(capsys):
    code = main([
        "run", "qtnp", "--max-crowd", "15", "--clients", "55",
        "--stage", "base", "--quiet", "--seed", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("Base\t")


def test_run_full_output_has_inference(capsys):
    code = main([
        "run", "univ1", "--max-crowd", "20", "--clients", "55",
        "--stage", "base", "--seed", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "MFC against univ1" in out
    assert "Constraint report" in out


def test_run_aborts_with_small_fleet(capsys):
    # the paper's behaviour: a fleet that cannot field the minimum
    # number of live clients aborts the experiment → non-zero exit
    code = main([
        "run", "qtnp", "--clients", "30", "--min-clients", "50",
        "--stage", "base", "--seed", "3",
    ])
    assert code == 1
    assert "ABORTED" in capsys.readouterr().out


def test_run_mfc_mr_flag(capsys):
    code = main([
        "run", "qtnp", "--mr", "2", "--threshold-ms", "250",
        "--max-crowd", "30", "--step", "10", "--clients", "55",
        "--stage", "base", "--quiet", "--seed", "4",
    ])
    assert code == 0


def test_run_stagger_flag(capsys):
    code = main([
        "run", "qtnp", "--stagger-ms", "100", "--max-crowd", "15",
        "--clients", "55", "--stage", "base", "--quiet", "--seed", "5",
    ])
    assert code == 0


def test_run_background_override(capsys):
    code = main([
        "run", "univ3", "--background", "2.0", "--max-crowd", "15",
        "--clients", "55", "--stage", "base", "--quiet", "--seed", "6",
    ])
    assert code == 0


def test_run_jobs_matches_sequential_single_stage(capsys, tmp_path):
    args = ["run", "qtnp", "--max-crowd", "15", "--clients", "55",
            "--stage", "base", "--quiet", "--seed", "1"]
    assert main(args) == 0
    sequential = capsys.readouterr().out
    cache = str(tmp_path / "run.jsonl")
    assert main(args + ["--jobs", "2", "--cache", cache]) == 0
    assert capsys.readouterr().out == sequential
    # cached re-run prints the same outcome without recomputing
    assert main(args + ["--jobs", "2", "--cache", cache]) == 0
    assert capsys.readouterr().out == sequential


def test_run_cache_without_jobs_is_rejected(capsys, tmp_path):
    # --cache has no meaning on the shared-single-world path; demanding
    # --jobs avoids silently switching to per-stage worlds
    code = main(["run", "qtnp", "--cache", str(tmp_path / "c.jsonl")])
    assert code == 2
    assert "--cache requires --jobs" in capsys.readouterr().err


def test_campaign_runs_and_resumes(capsys, tmp_path):
    cache = str(tmp_path / "phishing.jsonl")
    args = ["campaign", "phishing", "--scale", "0.02", "--max-crowd", "20",
            "--clients", "55", "--seed", "3", "--quiet", "--cache", cache]
    assert main(args + ["--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "phishing population, Base stage" in out
    assert "stratum" in out
    # every job is now cached: the repeat run reports identically
    assert main(args) == 0
    assert capsys.readouterr().out == out


def test_parser_rejects_unknown_population():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign", "nonexistent"])


def test_parser_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nonexistent"])


def test_parser_rejects_unknown_stage():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "qtnp", "--stage", "upload"])


# -- repro perf ----------------------------------------------------------------


def _stub_perf_suites(monkeypatch, world_fingerprint="sha256:aa"):
    import repro.perf as perf

    monkeypatch.setattr(
        perf, "run_kernel_suite",
        lambda quick=False: {"kernel.stub": {"seconds": 0.5, "params": {"n": 1}}},
    )
    monkeypatch.setattr(
        perf, "run_world_suite",
        lambda quick=False: {
            "world.stub": {
                "seconds": 1.0,
                "params": {"n": 2},
                "fingerprint": world_fingerprint,
            }
        },
    )


def test_perf_records_and_scores_against_baseline(tmp_path, monkeypatch, capsys):
    _stub_perf_suites(monkeypatch)
    out = str(tmp_path)
    assert main(["perf", "--out", out, "--update-baseline"]) == 0
    assert main(["perf", "--out", out]) == 0
    stdout = capsys.readouterr().out
    assert "1.00x" in stdout
    assert (tmp_path / "BENCH_kernel.json").exists()
    assert (tmp_path / "BENCH_world.json").exists()


def test_perf_fails_on_fingerprint_drift(tmp_path, monkeypatch, capsys):
    _stub_perf_suites(monkeypatch)
    out = str(tmp_path)
    assert main(["perf", "--out", out, "--update-baseline"]) == 0
    _stub_perf_suites(monkeypatch, world_fingerprint="sha256:bb")
    assert main(["perf", "--out", out]) == 1
    assert "determinism drift" in capsys.readouterr().err


def test_perf_fails_closed_when_nothing_is_comparable(tmp_path, monkeypatch, capsys):
    """A baseline exists but no fingerprinted bench matches it (params
    changed without --update-baseline): the guard must not pass green."""
    _stub_perf_suites(monkeypatch)
    out = str(tmp_path)
    assert main(["perf", "--out", out, "--update-baseline"]) == 0
    import repro.perf as perf

    monkeypatch.setattr(
        perf, "run_world_suite",
        lambda quick=False: {
            "world.stub": {
                "seconds": 1.0,
                "params": {"n": 99},  # no longer comparable
                "fingerprint": "sha256:aa",
            }
        },
    )
    assert main(["perf", "--out", out]) == 1
    assert "no fingerprinted bench matched" in capsys.readouterr().err


def test_perf_without_baseline_succeeds_with_hint(tmp_path, monkeypatch, capsys):
    _stub_perf_suites(monkeypatch)
    assert main(["perf", "--out", str(tmp_path)]) == 0
    assert "record one with --update-baseline" in capsys.readouterr().out
