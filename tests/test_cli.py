"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import SCENARIOS, build_parser, main


def test_list_prints_all_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out


def test_list_describes_server_model_and_notes(capsys):
    main(["list"])
    out = capsys.readouterr().out
    # one-line description: server model (boxes, cores, access link)
    # plus the scenario notes
    assert "16x qtp (8 core, 10000 Mbps)" in out
    assert "Table 1 target." in out
    assert "Figure 5/6 validation target" in out


def test_run_quiet_prints_stage_lines(capsys):
    code = main([
        "run", "qtnp", "--max-crowd", "15", "--clients", "55",
        "--stage", "base", "--quiet", "--seed", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("Base\t")


def test_run_full_output_has_inference(capsys):
    code = main([
        "run", "univ1", "--max-crowd", "20", "--clients", "55",
        "--stage", "base", "--seed", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "MFC against univ1" in out
    assert "Constraint report" in out


def test_run_aborts_with_small_fleet(capsys):
    # the paper's behaviour: a fleet that cannot field the minimum
    # number of live clients aborts the experiment → non-zero exit
    code = main([
        "run", "qtnp", "--clients", "30", "--min-clients", "50",
        "--stage", "base", "--seed", "3",
    ])
    assert code == 1
    assert "ABORTED" in capsys.readouterr().out


def test_run_mfc_mr_flag(capsys):
    code = main([
        "run", "qtnp", "--mr", "2", "--threshold-ms", "250",
        "--max-crowd", "30", "--step", "10", "--clients", "55",
        "--stage", "base", "--quiet", "--seed", "4",
    ])
    assert code == 0


def test_run_stagger_flag(capsys):
    code = main([
        "run", "qtnp", "--stagger-ms", "100", "--max-crowd", "15",
        "--clients", "55", "--stage", "base", "--quiet", "--seed", "5",
    ])
    assert code == 0


def test_run_background_override(capsys):
    code = main([
        "run", "univ3", "--background", "2.0", "--max-crowd", "15",
        "--clients", "55", "--stage", "base", "--quiet", "--seed", "6",
    ])
    assert code == 0


def test_run_jobs_matches_sequential_single_stage(capsys, tmp_path):
    args = ["run", "qtnp", "--max-crowd", "15", "--clients", "55",
            "--stage", "base", "--quiet", "--seed", "1"]
    assert main(args) == 0
    sequential = capsys.readouterr().out
    cache = str(tmp_path / "run.jsonl")
    assert main(args + ["--jobs", "2", "--cache", cache]) == 0
    assert capsys.readouterr().out == sequential
    # cached re-run prints the same outcome without recomputing
    assert main(args + ["--jobs", "2", "--cache", cache]) == 0
    assert capsys.readouterr().out == sequential


def test_run_cache_without_jobs_is_rejected(capsys, tmp_path):
    # --cache has no meaning on the shared-single-world path; demanding
    # --jobs avoids silently switching to per-stage worlds
    code = main(["run", "qtnp", "--cache", str(tmp_path / "c.jsonl")])
    assert code == 2
    assert "--cache requires --jobs" in capsys.readouterr().err


def test_campaign_runs_and_resumes(capsys, tmp_path):
    cache = str(tmp_path / "phishing.jsonl")
    args = ["campaign", "phishing", "--scale", "0.02", "--max-crowd", "20",
            "--clients", "55", "--seed", "3", "--quiet", "--cache", cache]
    assert main(args + ["--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "phishing population, Base stage" in out
    assert "stratum" in out
    # every job is now cached: the repeat run reports identically
    assert main(args) == 0
    assert capsys.readouterr().out == out


def test_list_json_is_machine_readable(capsys):
    assert main(["list", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc["scenarios"]) == set(SCENARIOS)
    assert doc["stage_kinds"] == ["Base", "SmallQuery", "LargeObject"]
    assert doc["scenarios"]["qtp"]["n_servers"] == 16
    # api-micro's biggest file is below the Large Object bound
    assert doc["scenarios"]["api-micro"]["stages"] == ["Base", "SmallQuery"]
    assert doc["fleet_presets"]["lan"]["unresponsive_fraction"] == 0.0
    assert "linear" in doc["synthetic_models"]


# -- repro spec dump / run --spec ----------------------------------------------


SPEC_FLAGS = ["--max-crowd", "15", "--clients", "55", "--stage", "base",
              "--seed", "1"]


def test_spec_dump_roundtrips_through_run(capsys, tmp_path):
    """Acceptance: a preset exported via `spec dump` then run via
    `run --spec` reproduces the preset run exactly."""
    assert main(["run", "qtnp", "--quiet"] + SPEC_FLAGS) == 0
    direct = capsys.readouterr().out
    assert main(["spec", "dump", "qtnp"] + SPEC_FLAGS) == 0
    document = capsys.readouterr().out
    path = tmp_path / "world.json"
    path.write_text(document)
    assert main(["run", "--spec", str(path), "--quiet"]) == 0
    assert capsys.readouterr().out == direct


def test_spec_dump_to_file_and_hash_stability(capsys, tmp_path):
    out = tmp_path / "world.json"
    assert main(["spec", "dump", "univ1", "--out", str(out)] + SPEC_FLAGS) == 0
    first = out.read_text()
    assert main(["spec", "dump", "univ1", "--out", str(out)] + SPEC_FLAGS) == 0
    assert out.read_text() == first  # dump is deterministic
    assert "spec hash" in capsys.readouterr().err
    from repro.worlds import WorldSpec

    spec = WorldSpec.from_json(first)
    assert spec.scenario.name == "univ1"


def test_run_spec_rejects_bad_combinations(capsys, tmp_path):
    # neither scenario nor --spec
    assert main(["run"]) == 2
    assert "exactly one" in capsys.readouterr().err
    # both
    path = tmp_path / "w.json"
    path.write_text("{}")
    assert main(["run", "qtnp", "--spec", str(path)]) == 2
    capsys.readouterr()
    # --spec with --jobs
    assert main(["run", "--spec", str(path), "--jobs", "2"]) == 2
    assert "single world" in capsys.readouterr().err
    # world-shaping flags are rejected, not silently ignored: the
    # document is the world
    assert main(["run", "--spec", str(path), "--seed", "7",
                 "--max-crowd", "30"]) == 2
    err = capsys.readouterr().err
    assert "--seed" in err and "--max-crowd" in err
    assert "edit the document" in err
    # unreadable / non-world documents
    assert main(["run", "--spec", str(tmp_path / "missing.json")]) == 2
    assert "cannot load spec" in capsys.readouterr().err
    assert main(["run", "--spec", str(path)]) == 2
    assert "cannot load spec" in capsys.readouterr().err
    # decodes fine but fails world validation at build time
    from repro.worlds import SyntheticSpec, WorldSpec

    bad_world = tmp_path / "bad_world.json"
    bad_world.write_text(
        WorldSpec(synthetic=SyntheticSpec(model="quadratic")).to_json()
    )
    assert main(["run", "--spec", str(bad_world)]) == 2
    assert "invalid world spec" in capsys.readouterr().err


def test_campaign_dry_run_reports_stable_expansion(capsys):
    args = ["campaign", "phishing", "--scale", "0.05", "--dry-run"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "4 jobs, 4 distinct keys" in first
    assert "keys-digest: sha256:" in first
    # expansion and keys are deterministic run-to-run
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_campaign_batched_sharded_cache_and_compact(capsys, tmp_path):
    cache = str(tmp_path / "cache.d")  # no .jsonl suffix -> sharded
    args = ["campaign", "startups", "--scale", "0.03", "--max-crowd", "20",
            "--clients", "55", "--seed", "3", "--quiet", "--cache", cache,
            "--jobs", "2", "--batch", "2"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "startups population" in out
    assert list((tmp_path / "cache.d").glob("shard-*.jsonl"))
    # repeat run: fully cached, identical report
    assert main(args) == 0
    assert capsys.readouterr().out == out
    # compaction is a maintenance subcommand without a population
    assert main(["campaign", "--compact", cache]) == 0
    compact_out = capsys.readouterr().out
    assert "compacted" in compact_out and "reclaimed" in compact_out
    # and the cache still serves the campaign afterwards
    assert main(args) == 0
    assert capsys.readouterr().out == out


def test_campaign_compact_missing_store_fails(capsys, tmp_path):
    assert main(["campaign", "--compact", str(tmp_path / "nope.d")]) == 1
    assert "no store" in capsys.readouterr().err


def test_campaign_requires_population_without_compact(capsys):
    assert main(["campaign"]) == 2
    assert "population is required" in capsys.readouterr().err


def test_campaign_dry_run_prints_stratum_counts(capsys):
    assert main(["campaign", "quantcast", "--scale", "0.02", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "strata: 1-1K=2, 1K-10K=2, 10K-100K=2, 100K-1M=3 (9 sites)" in out


def test_parser_rejects_unknown_population():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign", "nonexistent"])


def test_parser_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nonexistent"])


def test_parser_rejects_unknown_stage():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "qtnp", "--stage", "upload"])


# -- repro stages / run --stages / --planner -------------------------------------


def test_stages_lists_registry_and_planners(capsys):
    assert main(["stages"]) == 0
    out = capsys.readouterr().out
    for name in ("Base", "SmallQuery", "LargeObject", "Upload", "ConnChurn",
                 "CacheBust"):
        assert name in out
    for planner in ("linear", "geometric", "bisect"):
        assert planner in out
    # recipes and targeted resources are shown
    assert "POST+64KB body" in out
    assert "back-end write path" in out


def test_stages_tolerates_docstring_less_planner(capsys, monkeypatch):
    from repro.core.epochs import PLANNERS, LinearRamp

    class Custom(LinearRamp):
        pass

    Custom.__doc__ = None
    monkeypatch.setitem(PLANNERS, "custom", Custom)
    assert main(["stages"]) == 0
    assert "custom" in capsys.readouterr().out


def test_run_with_named_stages(capsys):
    code = main([
        "run", "qtnp", "--stages", "ConnChurn", "--stages", "Upload",
        "--max-crowd", "15", "--clients", "55", "--quiet", "--seed", "1",
    ])
    assert code == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0].startswith("ConnChurn\t")
    assert lines[1].startswith("Upload\t")


def test_run_with_bisect_planner(capsys):
    code = main([
        "run", "qtnp", "--planner", "bisect", "--max-crowd", "20",
        "--clients", "55", "--stage", "base", "--quiet", "--seed", "1",
    ])
    assert code == 0
    assert capsys.readouterr().out.startswith("Base\t")


def test_run_rejects_stage_and_stages_together(capsys):
    code = main([
        "run", "qtnp", "--stage", "base", "--stages", "Upload", "--quiet",
    ])
    assert code == 2
    assert "not both" in capsys.readouterr().err


def test_parser_rejects_unknown_registry_stage_and_planner():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "qtnp", "--stages", "Teleport"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "qtnp", "--planner", "oracle"])


def test_run_jobs_with_named_stages(capsys, tmp_path):
    args = ["run", "qtnp", "--stages", "CacheBust", "--max-crowd", "15",
            "--clients", "55", "--quiet", "--seed", "1"]
    assert main(args) == 0
    sequential = capsys.readouterr().out
    cache = str(tmp_path / "stages.jsonl")
    assert main(args + ["--jobs", "2", "--cache", cache]) == 0
    assert capsys.readouterr().out == sequential


def test_spec_dump_with_stages_and_planner_roundtrips(capsys, tmp_path):
    flags = ["--stages", "Upload", "--planner", "geometric", "--max-crowd",
             "15", "--clients", "55", "--seed", "1"]
    assert main(["run", "qtnp", "--quiet"] + flags) == 0
    direct = capsys.readouterr().out
    assert main(["spec", "dump", "qtnp"] + flags) == 0
    document = capsys.readouterr().out
    assert '"Upload"' in document and '"geometric"' in document
    path = tmp_path / "world.json"
    path.write_text(document)
    assert main(["run", "--spec", str(path), "--quiet"]) == 0
    assert capsys.readouterr().out == direct


def test_list_json_includes_probe_stages_and_planners(capsys):
    assert main(["list", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["planners"] == ["bisect", "geometric", "linear"]
    stages = doc["probe_stages"]
    assert set(stages) >= {"Base", "SmallQuery", "LargeObject", "Upload",
                           "ConnChurn", "CacheBust"}
    assert stages["Upload"]["method"] == "POST"
    assert stages["Upload"]["body_bytes"] == 64 * 1024.0
    assert stages["ConnChurn"]["connections"] == 4
    assert stages["CacheBust"]["resource"] == "storage (disk) subsystem"


# -- repro perf ----------------------------------------------------------------


def _stub_perf_suites(monkeypatch, world_fingerprint="sha256:aa"):
    import repro.perf as perf

    monkeypatch.setattr(
        perf, "run_kernel_suite",
        lambda quick=False: {"kernel.stub": {"seconds": 0.5, "params": {"n": 1}}},
    )
    monkeypatch.setattr(
        perf, "run_world_suite",
        lambda quick=False: {
            "world.stub": {
                "seconds": 1.0,
                "params": {"n": 2},
                "fingerprint": world_fingerprint,
            }
        },
    )
    monkeypatch.setattr(
        perf, "run_campaign_suite",
        lambda quick=False: {},
    )
    monkeypatch.setattr(
        perf, "run_triage_suite",
        lambda quick=False: {},
    )


def test_perf_records_and_scores_against_baseline(tmp_path, monkeypatch, capsys):
    _stub_perf_suites(monkeypatch)
    out = str(tmp_path)
    assert main(["perf", "--out", out, "--update-baseline"]) == 0
    assert main(["perf", "--out", out]) == 0
    stdout = capsys.readouterr().out
    assert "1.00x" in stdout
    assert (tmp_path / "BENCH_kernel.json").exists()
    assert (tmp_path / "BENCH_world.json").exists()


def test_perf_fails_on_fingerprint_drift(tmp_path, monkeypatch, capsys):
    _stub_perf_suites(monkeypatch)
    out = str(tmp_path)
    assert main(["perf", "--out", out, "--update-baseline"]) == 0
    _stub_perf_suites(monkeypatch, world_fingerprint="sha256:bb")
    assert main(["perf", "--out", out]) == 1
    assert "determinism drift" in capsys.readouterr().err


def test_perf_fails_closed_when_nothing_is_comparable(tmp_path, monkeypatch, capsys):
    """A baseline exists but no fingerprinted bench matches it (params
    changed without --update-baseline): the guard must not pass green."""
    _stub_perf_suites(monkeypatch)
    out = str(tmp_path)
    assert main(["perf", "--out", out, "--update-baseline"]) == 0
    import repro.perf as perf

    monkeypatch.setattr(
        perf, "run_world_suite",
        lambda quick=False: {
            "world.stub": {
                "seconds": 1.0,
                "params": {"n": 99},  # no longer comparable
                "fingerprint": "sha256:aa",
            }
        },
    )
    assert main(["perf", "--out", out]) == 1
    assert "no fingerprinted bench matched" in capsys.readouterr().err


def test_perf_without_baseline_succeeds_with_hint(tmp_path, monkeypatch, capsys):
    _stub_perf_suites(monkeypatch)
    assert main(["perf", "--out", str(tmp_path)]) == 0
    assert "record one with --update-baseline" in capsys.readouterr().out


# -- faults: repro run --faults / repro chaos / campaign --fsck ----------------


def test_run_faults_flag_injects_and_stays_deterministic(capsys):
    args = ["run", "lab", "--max-crowd", "15", "--clients", "55",
            "--stage", "base", "--quiet", "--seed", "4"]
    assert main(args) == 0
    clean = capsys.readouterr().out
    assert main(args + ["--faults", "dropout"]) == 0
    faulted = capsys.readouterr().out
    assert faulted.startswith("Base\t")
    # same seed, same plan: identical run; the plan itself perturbs it
    assert main(args + ["--faults", "dropout"]) == 0
    assert capsys.readouterr().out == faulted
    assert main(args + ["--faults", "report-loss"]) == 0
    assert capsys.readouterr().out != clean or faulted != clean


def test_spec_dump_carries_the_fault_plan(capsys, tmp_path):
    document = tmp_path / "faulted.json"
    assert main([
        "spec", "dump", "lab", "--faults", "stall", "--faults", "crash",
        "--out", str(document),
    ]) == 0
    capsys.readouterr()
    doc = json.loads(document.read_text())
    kinds = [e["kind"] for e in doc["faults"]["events"]]
    assert kinds == ["stall", "server-crash"]
    # the flag is a world flag: --spec refuses it like any other
    assert main(["run", "--spec", str(document), "--faults", "stall"]) == 2
    assert "--faults" in capsys.readouterr().err


def test_parser_rejects_unknown_fault_preset():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "lab", "--faults", "gremlins"])


def test_list_json_includes_fault_presets(capsys):
    assert main(["list", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    presets = doc["fault_presets"]
    assert "dropout" in presets and "crash" in presets
    assert presets["stall"]["events"][0]["kind"] == "stall"


def test_chaos_quick_passes_and_is_machine_readable(capsys, tmp_path):
    cache = str(tmp_path / "chaos.cache")
    assert main(["chaos", "--quick", "--json", "--cache", cache]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["counts"]["silently_wrong"] == 0
    assert report["counts"]["worlds"] == 8
    # the cached rerun renders the identical human report, exit 0
    assert main(["chaos", "--quick", "--cache", cache, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "silently_wrong=0" in out
    assert "SILENTLY WRONG" not in out


def test_campaign_fsck_reports_and_gates(capsys, tmp_path):
    from repro.campaign.store import ResultStore

    cache = tmp_path / "study.cache"
    store = ResultStore(cache)
    store.append({
        "key": "aa01", "job_id": "aa01", "meta": {}, "detail": "summary",
        "elapsed_s": 0.1, "result": {"kind": "value", "value": 1},
    })
    assert main(["campaign", "--fsck", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "1 live record(s)" in out
    assert "0 corrupt" in out
    # mid-file damage: nonzero exit and a pointer at --compact
    path = store.shard_paths()[0]
    path.write_text('{"broken\n' + path.read_text())
    assert main(["campaign", "--fsck", str(cache)]) == 1
    captured = capsys.readouterr()
    assert "CORRUPT" in captured.out
    assert "--compact" in captured.err


def test_campaign_fsck_missing_store_fails(capsys, tmp_path):
    assert main(["campaign", "--fsck", str(tmp_path / "absent")]) == 1
    assert "no store" in capsys.readouterr().err
