"""Tests for the command-line interface."""

import pytest

from repro.cli import SCENARIOS, build_parser, main


def test_list_prints_all_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out


def test_run_quiet_prints_stage_lines(capsys):
    code = main([
        "run", "qtnp", "--max-crowd", "15", "--clients", "55",
        "--stage", "base", "--quiet", "--seed", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert out.startswith("Base\t")


def test_run_full_output_has_inference(capsys):
    code = main([
        "run", "univ1", "--max-crowd", "20", "--clients", "55",
        "--stage", "base", "--seed", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "MFC against univ1" in out
    assert "Constraint report" in out


def test_run_aborts_with_small_fleet(capsys):
    # the paper's behaviour: a fleet that cannot field the minimum
    # number of live clients aborts the experiment → non-zero exit
    code = main([
        "run", "qtnp", "--clients", "30", "--min-clients", "50",
        "--stage", "base", "--seed", "3",
    ])
    assert code == 1
    assert "ABORTED" in capsys.readouterr().out


def test_run_mfc_mr_flag(capsys):
    code = main([
        "run", "qtnp", "--mr", "2", "--threshold-ms", "250",
        "--max-crowd", "30", "--step", "10", "--clients", "55",
        "--stage", "base", "--quiet", "--seed", "4",
    ])
    assert code == 0


def test_run_stagger_flag(capsys):
    code = main([
        "run", "qtnp", "--stagger-ms", "100", "--max-crowd", "15",
        "--clients", "55", "--stage", "base", "--quiet", "--seed", "5",
    ])
    assert code == 0


def test_run_background_override(capsys):
    code = main([
        "run", "univ3", "--background", "2.0", "--max-crowd", "15",
        "--clients", "55", "--stage", "base", "--quiet", "--seed", "6",
    ])
    assert code == 0


def test_parser_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nonexistent"])


def test_parser_rejects_unknown_stage():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "qtnp", "--stage", "upload"])
