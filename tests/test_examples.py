"""Smoke tests: every shipped example runs clean and says what it
promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_quickstart_runs():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "Constraint report" in proc.stdout
    assert "Base" in proc.stdout


def test_cooperating_site_runs():
    proc = run_example("cooperating_site.py")
    assert proc.returncode == 0, proc.stderr
    assert "MFC share of all traffic" in proc.stdout
    assert "request handling, not bandwidth" in proc.stdout


def test_ddos_vulnerability_runs():
    proc = run_example("ddos_vulnerability.py")
    assert proc.returncode == 0, proc.stderr
    assert "Staggered MFC" in proc.stdout


def test_hosting_comparison_runs():
    proc = run_example("hosting_comparison.py")
    assert proc.returncode == 0, proc.stderr
    assert "4-box-cluster" in proc.stdout


def test_custom_world_runs():
    proc = run_example("custom_world.py")
    assert proc.returncode == 0, proc.stderr
    assert "hash unchanged" in proc.stdout
    assert "duo-cluster" in proc.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "cooperating_site.py",
            "ddos_vulnerability.py", "hosting_comparison.py",
            "custom_world.py"} <= names
