"""Property-based tests (hypothesis) for core data structures and
invariants (DESIGN.md §5)."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.config import MFCConfig
from repro.core.epochs import EpochPlanner, degradation_aggregate, median, quantile
from repro.core.records import EpochLabel, EpochResult, StageOutcome
from repro.core.scheduler import DelayEstimates, SyncScheduler
from repro.net.link import Network
from repro.server.cache import LRUCache
from repro.sim import Simulator
from repro.sim.rng import RNGRegistry

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)


# -- quantiles -----------------------------------------------------------------


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_quantile_within_bounds(values):
    for q in (0.0, 0.1, 0.5, 0.9, 1.0):
        result = quantile(values, q)
        assert min(values) <= result <= max(values)


@given(st.lists(finite_floats, min_size=1, max_size=100))
def test_quantile_monotone_in_q(values):
    qs = [0.0, 0.25, 0.5, 0.75, 1.0]
    results = [quantile(values, q) for q in qs]
    assert all(b >= a - 1e-9 for a, b in zip(results, results[1:]))


@given(st.lists(finite_floats, min_size=1, max_size=100), finite_floats)
def test_quantile_translation_invariant(values, shift):
    before = median(values)
    after = median([v + shift for v in values])
    assert math.isclose(before + shift, after, rel_tol=1e-6, abs_tol=1e-6)


@given(st.lists(finite_floats, min_size=1, max_size=100))
def test_degradation_aggregate_median_equals_median(values):
    assert degradation_aggregate(values, 0.5) == quantile(values, 0.5)


@given(
    st.lists(finite_floats, min_size=2, max_size=100),
    st.floats(min_value=0.5, max_value=0.99),
)
def test_stricter_fraction_never_larger(values, fraction):
    """Requiring more clients over θ can only lower the statistic."""
    assert (
        degradation_aggregate(values, fraction)
        <= degradation_aggregate(values, 0.5) + 1e-9
    )


# -- scheduler ------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(positive_floats, positive_floats), min_size=1, max_size=50
    )
)
def test_scheduler_arrivals_exact_with_stationary_latencies(latencies):
    """With live latencies equal to the estimates, every arrival is T."""
    estimates = [
        DelayEstimates(client_id=f"c{i}", coord_rtt_s=c, target_rtt_s=t)
        for i, (c, t) in enumerate(latencies)
    ]
    sched = SyncScheduler()
    target = sched.earliest_feasible_T(0.0, estimates) + 1.0
    plans = sched.plan(0.0, target, estimates)
    for plan, est in zip(plans, estimates):
        arrival = plan.dispatch_time + 0.5 * est.coord_rtt_s + 1.5 * est.target_rtt_s
        assert math.isclose(arrival, target, rel_tol=1e-9, abs_tol=1e-9)
        assert plan.dispatch_time >= -1e-9


# -- epoch planner -----------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=20),   # step
    st.integers(min_value=1, max_value=200),  # max crowd
    st.randoms(use_true_random=False),
)
@settings(max_examples=50)
def test_planner_crowds_nondecreasing_and_bounded(step, max_crowd, rnd):
    config = MFCConfig(
        initial_crowd=min(step, max_crowd),
        crowd_step=step,
        max_crowd=max_crowd,
        min_clients=1,
    )
    planner = EpochPlanner(config)
    last_normal = 0
    guard = 0
    while True:
        guard += 1
        assert guard < 1000, "planner failed to terminate"
        nxt = planner.next_epoch()
        if nxt is None:
            break
        crowd, label = nxt
        assert 1 <= crowd <= max_crowd
        if label is EpochLabel.NORMAL:
            assert crowd >= last_normal  # non-decreasing
            last_normal = crowd
        planner.record(
            EpochResult(
                index=guard,
                label=label,
                crowd_size=crowd,
                clients_used=crowd,
                target_time=0.0,
                degraded=rnd.random() < 0.3,
            )
        )
    assert planner.outcome in (StageOutcome.STOPPED, StageOutcome.NO_STOP)
    if planner.outcome is StageOutcome.STOPPED:
        assert planner.stopping_crowd_size is not None
        assert planner.stopping_crowd_size >= config.min_significant_crowd or (
            planner.stopping_crowd_size <= max_crowd
        )


# -- fluid network ------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=12,
    ),
    st.floats(min_value=10.0, max_value=1e7, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_network_conserves_bytes_and_respects_capacity(sizes, capacity):
    sim = Simulator()
    net = Network(sim)
    link = net.add_link("l", capacity)
    transfers = [net.start_transfer([link], s) for s in sizes]
    sim.run()
    assert all(t.done.processed for t in transfers)
    # byte conservation
    assert math.isclose(
        link.bytes_delivered, sum(sizes), rel_tol=1e-6, abs_tol=1e-3
    )
    # no transfer finished faster than the line rate allows
    for t, size in zip(transfers, sizes):
        assert t.finished_at >= size / capacity - 1e-6
    # total time is at least the aggregate serialization bound
    assert sim.now >= sum(sizes) / capacity - 1e-6


@given(
    st.lists(
        st.floats(min_value=100.0, max_value=1e5, allow_nan=False),
        min_size=2,
        max_size=8,
    )
)
@settings(max_examples=30, deadline=None)
def test_equal_flows_finish_together(sizes):
    """Identical concurrent flows on one link share fairly: equal sizes
    started together finish together."""
    sim = Simulator()
    net = Network(sim)
    link = net.add_link("l", 1000.0)
    size = sizes[0]
    transfers = [net.start_transfer([link], size) for _ in sizes]
    sim.run()
    finishes = {round(t.finished_at, 6) for t in transfers}
    assert len(finishes) == 1


# -- LRU cache ----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=20),
                  st.floats(min_value=1.0, max_value=400.0, allow_nan=False)),
        max_size=200,
    )
)
def test_cache_never_exceeds_budget(operations):
    cache = LRUCache(1000.0)
    for key, size in operations:
        cache.insert(f"k{key}", size)
        assert cache.used_bytes <= 1000.0 + 1e-9
        assert len(cache) <= 1000  # trivially, but exercises __len__


@given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=100))
def test_cache_lookup_after_insert_hits(keys):
    cache = LRUCache(1e9)
    for key in keys:
        cache.insert(f"k{key}", 1.0)
    for key in set(keys):
        assert cache.lookup(f"k{key}")


# -- RNG registry -----------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_rng_streams_reproducible(seed, name):
    a = RNGRegistry(seed).stream(name).random()
    b = RNGRegistry(seed).stream(name).random()
    assert a == b


# -- simulator ordering ----------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), max_size=50))
@settings(max_examples=50)
def test_event_firing_order_is_time_sorted(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.call_in(d, lambda d=d: fired.append(d))
    sim.run()
    assert fired == sorted(fired)
    assert sim.now == (max(delays) if delays else 0.0)
