"""Survey-mode populations: rank-proportional counts, hosting classes,
object mixes — and the determinism guarantee that replication-scale
populations (scale <= 1) never change."""

import hashlib

import pytest

from repro.campaign import JobSpec
from repro.workload.populations import (
    HostingClassSpec,
    ObjectMixSpec,
    RankStratumSpec,
    generate_population,
    quantcast_strata,
    survey_counts,
)


def test_survey_counts_are_rank_proportional():
    counts = survey_counts(10)
    assert counts == {
        "1-1K": 100,
        "1K-10K": 900,
        "10K-100K": 9_000,
        "100K-1M": 90_000,
    }
    assert sum(counts.values()) == 100_000
    assert sum(survey_counts(1).values()) >= 10_000


def test_quantcast_scale_10_expands_to_survey_mode():
    strata = quantcast_strata(10)
    assert sum(s.n_sites for s in strata) == 100_000
    # survey mode samples hosting class and object mix per site
    assert all(s.hosting_classes for s in strata)
    assert all(s.object_mix for s in strata)


def test_replication_scales_keep_paper_roster_and_determinism():
    strata = quantcast_strata(1.0)
    assert [s.n_sites for s in strata] == [114, 107, 118, 148]
    # no survey fields -> zero extra rng draws -> sites byte-identical
    # to every earlier release; the digest below freezes that contract
    assert all(s.hosting_classes is None and s.object_mix is None for s in strata)
    sites = generate_population(quantcast_strata(0.02), seed=0)
    digest = hashlib.sha256()
    for site in sites:
        job = JobSpec(job_id=site.site_id, scenario=site.scenario)
        digest.update(job.key.encode("ascii"))
    assert digest.hexdigest() == (
        "37b2f6a8929a2afc5d942edf18a1a823527c1068e39a37cfd387f2945c44d65b"
    )


def test_hosting_class_and_object_mix_sampling():
    classes = (
        (HostingClassSpec("small", cpu_cores=1, ram_gib=2.0, max_workers=256), 1.0),
        (HostingClassSpec("big", cpu_cores=8, ram_gib=16.0, max_workers=2048), 1.0),
    )
    mix = ((ObjectMixSpec("pages", n_static=3, static_bytes_range=(1_000, 2_000)), 1.0),)
    stratum = RankStratumSpec(
        name="survey", n_sites=20, hosting_classes=classes, object_mix=mix
    )
    sites = generate_population([stratum], seed=3)
    cores = {site.scenario.server_spec.cpu_cores for site in sites}
    assert cores == {1, 8}  # both classes drawn across 20 sites
    for site in sites:
        spec = site.scenario.server_spec
        assert spec.max_workers in (256, 2048)
        statics = [
            o for o in site.scenario.site.objects() if o.path.startswith("/static/")
        ]
        assert len(statics) == 3
        assert all(1_000 <= o.size_bytes <= 2_000 for o in statics)
        # extra objects are crawlable from the index page
        index = next(
            o for o in site.scenario.site.objects() if o.path == "/index.html"
        )
        assert all(o.path in index.links for o in statics)


def test_survey_fields_draw_after_legacy_sequence():
    # identical strata except for the survey fields: the survey draws
    # happen after a site's legacy provisioning draws, so the first
    # site's provisioning is untouched (later sites shift because the
    # stratum shares one stream — which is why replication populations
    # must leave the fields at None, per the digest test above)
    plain = RankStratumSpec(name="s", n_sites=5)
    surveyed = RankStratumSpec(
        name="s",
        n_sites=5,
        hosting_classes=((HostingClassSpec("x", cpu_cores=4), 1.0),),
    )
    a = generate_population([plain], seed=11)
    b = generate_population([surveyed], seed=11)
    assert (
        a[0].scenario.server_spec.head_cpu_s
        == b[0].scenario.server_spec.head_cpu_s
    )
    assert all(s.scenario.server_spec.cpu_cores == 4 for s in b)


def test_empty_survey_choices_rejected():
    with pytest.raises(ValueError, match="hosting_classes"):
        RankStratumSpec(name="s", n_sites=1, hosting_classes=()).validate()
    with pytest.raises(ValueError, match="object_mix"):
        RankStratumSpec(name="s", n_sites=1, object_mix=()).validate()
