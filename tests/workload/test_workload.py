"""Tests for fleets, background traffic and populations."""

import random

import pytest

from repro.content.site import minimal_site
from repro.net.topology import ClientSpec, Topology, TopologySpec
from repro.server.resources import ServerSpec
from repro.server.webserver import SimWebServer
from repro.sim import Simulator, RNGRegistry
from repro.workload import (
    BackgroundTraffic,
    FleetSpec,
    build_fleet,
    generate_population,
    phishing_population,
    quantcast_strata,
    startup_population,
)
from repro.workload.background import RequestMix
from repro.workload.populations import RankStratumSpec, generate_stratum


# -- fleet ------------------------------------------------------------------------


def test_fleet_size_and_ids():
    fleet = build_fleet(FleetSpec(n_clients=20), rng=random.Random(1))
    assert len(fleet) == 20
    assert len({c.client_id for c in fleet}) == 20


def test_fleet_deterministic():
    a = build_fleet(FleetSpec(), rng=random.Random(7))
    b = build_fleet(FleetSpec(), rng=random.Random(7))
    assert [c.rtt_to_target for c in a] == [c.rtt_to_target for c in b]


def test_fleet_rtts_within_range():
    spec = FleetSpec(n_clients=200, rtt_range=(0.02, 0.25))
    fleet = build_fleet(spec, rng=random.Random(2))
    assert all(0.02 <= c.rtt_to_target <= 0.25 for c in fleet)


def test_fleet_unresponsive_fraction():
    spec = FleetSpec(n_clients=500, unresponsive_fraction=0.2)
    fleet = build_fleet(spec, rng=random.Random(3))
    frac = sum(c.unresponsive_prob == 1.0 for c in fleet) / len(fleet)
    assert 0.12 < frac < 0.28


def test_fleet_bottleneck_assignment():
    spec = FleetSpec(
        n_clients=100, bottleneck_group="transit", bottleneck_fraction=0.5
    )
    fleet = build_fleet(spec, rng=random.Random(4))
    behind = sum(c.bottleneck_group == "transit" for c in fleet)
    assert 30 < behind < 70


def test_fleet_validation():
    with pytest.raises(ValueError):
        FleetSpec(n_clients=0).validate()
    with pytest.raises(ValueError):
        FleetSpec(unresponsive_fraction=1.0).validate()
    with pytest.raises(ValueError):
        FleetSpec(bottleneck_fraction=0.5).validate()  # no group named


# -- background traffic ---------------------------------------------------------------


def background_world(rate, duration=100.0, mix=None):
    sim = Simulator()
    topo = Topology(
        sim,
        TopologySpec(
            server_access_bps=1e9,
            clients=[
                ClientSpec(f"bg{i}", 0.03, 0.02, 1e8, jitter=0.0) for i in range(4)
            ],
        ),
    )
    server = SimWebServer(
        sim, ServerSpec(), minimal_site(), topo.network, topo.server_access
    )
    traffic = BackgroundTraffic(
        sim,
        server,
        minimal_site(),
        topo.clients,
        rate_rps=rate,
        rng=random.Random(5),
        mix=mix,
    )
    traffic.start()
    sim.run(until=duration)
    traffic.stop()
    sim.run()
    return server, traffic


def test_background_rate_approximates_poisson():
    server, traffic = background_world(rate=5.0, duration=200.0)
    rate = traffic.requests_issued / 200.0
    assert 4.0 < rate < 6.0


def test_background_requests_not_marked_mfc():
    server, _ = background_world(rate=2.0, duration=50.0)
    assert len(server.access_log.mfc_records()) == 0
    assert len(server.access_log.background_records()) > 50


def test_background_zero_rate_is_noop():
    server, traffic = background_world(rate=0.0)
    assert traffic.requests_issued == 0


def test_background_mix_heads_only():
    mix = RequestMix(head=1.0, static=0.0, query=0.0)
    server, _ = background_world(rate=5.0, duration=50.0, mix=mix)
    from repro.server.http import Method

    assert all(r.method is Method.HEAD for r in server.access_log.records)


def test_background_mix_validation():
    with pytest.raises(ValueError):
        RequestMix(head=0.5, static=0.5, query=0.5).validate()


def test_background_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        BackgroundTraffic(sim, None, minimal_site(), [], rate_rps=1.0)


# -- populations ------------------------------------------------------------------------


def test_quantcast_strata_counts():
    strata = quantcast_strata()
    assert [s.name for s in strata] == ["1-1K", "1K-10K", "10K-100K", "100K-1M"]
    assert [s.n_sites for s in strata] == [114, 107, 118, 148]


def test_quantcast_scale():
    strata = quantcast_strata(scale=0.1)
    assert [s.n_sites for s in strata] == [11, 11, 12, 15]


def test_generate_population_deterministic():
    sites_a = generate_population(quantcast_strata(scale=0.05), seed=9)
    sites_b = generate_population(quantcast_strata(scale=0.05), seed=9)
    assert [s.site_id for s in sites_a] == [s.site_id for s in sites_b]
    assert [
        s.scenario.server_spec.head_cpu_s for s in sites_a
    ] == [s.scenario.server_spec.head_cpu_s for s in sites_b]


def test_population_sites_have_valid_scenarios():
    sites = generate_population(quantcast_strata(scale=0.05), seed=1)
    for site in sites:
        site.scenario.server_spec.validate()
        assert site.scenario.server_access_bps > 0
        assert "/index.html" in site.scenario.site


def test_rank_correlation_of_head_cost():
    """Lower-ranked strata draw slower HEAD processing on average."""
    sites = generate_population(quantcast_strata(scale=0.5), seed=2)
    by_stratum = {}
    for s in sites:
        by_stratum.setdefault(s.stratum, []).append(
            s.scenario.server_spec.head_cpu_s
        )
    means = {k: sum(v) / len(v) for k, v in by_stratum.items()}
    assert means["1-1K"] < means["10K-100K"] < means["100K-1M"]


def test_response_cache_probability_rank_correlated():
    sites = generate_population(quantcast_strata(scale=1.0), seed=3)
    frac = {}
    for stratum in ("1-1K", "100K-1M"):
        group = [s for s in sites if s.stratum == stratum]
        frac[stratum] = sum(
            1 for s in group if s.scenario.server_spec.response_cache_bytes > 0
        ) / len(group)
    assert frac["1-1K"] > frac["100K-1M"] + 0.3


def test_startup_population_bimodal():
    strata = startup_population()
    names = [s.name for s in strata]
    assert "startup-hosted" in names and "startup-weak" in names
    total = sum(s.n_sites for s in strata)
    assert total == 107


def test_phishing_population_count():
    strata = phishing_population()
    assert strata[0].n_sites == 89
    # half the phishing sites host no dynamic content
    assert strata[0].has_small_query_prob == 0.5


def test_stratum_validation():
    with pytest.raises(ValueError):
        RankStratumSpec(name="x", n_sites=-1).validate()
    with pytest.raises(ValueError):
        RankStratumSpec(name="x", n_sites=1, head_cpu_median_s=0).validate()
    with pytest.raises(ValueError):
        RankStratumSpec(name="x", n_sites=1, bandwidth_choices=()).validate()


def test_generate_stratum_site_count_and_naming():
    spec = RankStratumSpec(name="test", n_sites=5)
    sites = generate_stratum(spec, RNGRegistry(0))
    assert len(sites) == 5
    assert all(s.stratum == "test" for s in sites)
    assert len({s.site_id for s in sites}) == 5
