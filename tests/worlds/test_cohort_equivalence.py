"""Cohort-vs-exact equivalence: the aggregation soundness property.

The full-registry grid is the CI cohort-parity job (``repro equiv``);
here the --quick slice — the three structurally different server
shapes — runs as a tier-1 property test, plus the spec-level
byte-stability guarantees the grid rides on.
"""

from repro.worlds.codec import encode
from repro.worlds.equivalence import (
    QUICK_SCENARIOS,
    equivalence_grid,
    knee_tolerance,
    plan_equivalence_jobs,
)
from repro.faults.chaos import chaos_config


def test_quick_grid_has_no_verdict_mismatches():
    report = equivalence_grid(quick=True, seed=0, jobs=2)
    counts = report["counts"]
    assert counts["compared"] > 0
    assert counts["verdict_mismatches"] == 0
    assert counts["knee_out_of_tolerance"] == 0
    # the grid must actually exercise both claims, not vacuously pass
    assert counts["matched"] + counts["boundary"] + counts["soft"] == (
        counts["compared"]
    )


def test_plan_pairs_every_scenario_in_both_modes():
    jobs = plan_equivalence_jobs(QUICK_SCENARIOS, seed=3)
    assert len(jobs) == 2 * len(QUICK_SCENARIOS)
    by_scenario = {}
    for job in jobs:
        by_scenario.setdefault(job.meta["scenario"], set()).add(
            job.meta["mode"]
        )
    assert all(modes == {"exact", "cohort"} for modes in by_scenario.values())
    # paired worlds differ in crowd_mode and nothing else
    for name in QUICK_SCENARIOS:
        exact, cohort = (
            next(
                j.world
                for j in jobs
                if j.meta == {"scenario": name, "mode": mode}
            )
            for mode in ("exact", "cohort")
        )
        assert exact.crowd_mode is None
        assert cohort.crowd_mode == "cohort"
        assert exact.seed == cohort.seed
        assert exact.config == cohort.config


def test_exact_world_encoding_is_byte_stable():
    """``crowd_mode`` is default-omitted: pre-cohort specs, hashes and
    campaign job keys survive unchanged."""
    jobs = plan_equivalence_jobs(("lab",), seed=0)
    exact = next(j.world for j in jobs if j.meta["mode"] == "exact")
    assert "crowd_mode" not in encode(exact, cosmetic=False)
    cohort = next(j.world for j in jobs if j.meta["mode"] == "cohort")
    assert encode(cohort, cosmetic=False)["crowd_mode"] == "cohort"
    # and the two specs hash apart (the store must never alias them)
    assert exact.spec_hash != cohort.spec_hash


def test_knee_tolerance_tracks_the_ramp_resolution():
    config = chaos_config()
    tol = knee_tolerance(config)
    assert tol == max(2 * config.crowd_step, int(0.3 * config.max_crowd))
    assert tol >= 2 * config.crowd_step
