"""Tests for the declarative world layer: spec, codec, registries."""

import json
import random

import pytest

from repro.campaign.codec import encode_result
from repro.core.config import MFCConfig
from repro.core.runner import MFCRunner
from repro.core.stages import StageKind
from repro.server.presets import qtnp_server
from repro.workload.fleet import FleetSpec, lan_fleet
from repro.worlds import (
    FLEET_PRESETS,
    SCENARIO_PRESETS,
    SYNTHETIC_MODELS,
    SyntheticSpec,
    WorldSpec,
    codec,
)

SMALL_CONFIG = MFCConfig(max_crowd=15, crowd_step=5, initial_crowd=5, min_clients=10)
SMALL_FLEET = FleetSpec(n_clients=20, unresponsive_fraction=0.0)


def fingerprint(result) -> str:
    """Full-detail canonical encoding — byte-identical results only."""
    return json.dumps(
        encode_result(result, detail="full"), sort_keys=True, separators=(",", ":")
    )


# -- round-trips over every shipped preset ----------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
def test_every_preset_roundtrips_with_stable_hash(name):
    """encode→decode preserves the spec hash and still builds."""
    spec = WorldSpec(
        scenario=SCENARIO_PRESETS[name](),
        fleet=SMALL_FLEET,
        config=SMALL_CONFIG,
        seed=7,
        stage_kinds=(StageKind.BASE,),
    )
    decoded = WorldSpec.from_json(spec.to_json())
    assert decoded.spec_hash == spec.spec_hash
    runner = decoded.build()
    assert runner.world_spec is decoded
    assert [s.kind for s in runner.stages] == [StageKind.BASE]
    # cosmetic annotations survive the dump but never touch the hash
    assert decoded.scenario.notes == spec.scenario.notes


@pytest.mark.parametrize("name", ["qtnp", "univ1", "budget-vps"])
def test_preset_roundtrip_preserves_result_fingerprint(name):
    """A decoded spec's world produces byte-identical results."""
    spec = WorldSpec(
        scenario=SCENARIO_PRESETS[name](),
        fleet=SMALL_FLEET,
        config=SMALL_CONFIG,
        seed=3,
        stage_kinds=(StageKind.BASE,),
    )
    decoded = WorldSpec.from_json(spec.to_json())
    assert fingerprint(decoded.build().run()) == fingerprint(spec.build().run())


def test_property_roundtrip_hash_stability():
    """Seeded property sweep: random fleet/config knobs always
    round-trip encode→decode with an unchanged spec hash."""
    rng = random.Random(20260726)
    presets = sorted(SCENARIO_PRESETS)
    all_stages = list(StageKind)
    for _ in range(25):
        fleet = FleetSpec(
            n_clients=rng.randint(5, 80),
            rtt_range=(rng.uniform(0.001, 0.05), rng.uniform(0.06, 0.4)),
            access_bps_choices=tuple(
                rng.choice([1.25e6, 12.5e6, 125e6]) for _ in range(rng.randint(1, 3))
            ),
            unresponsive_fraction=rng.uniform(0.0, 0.5),
            spike_node_fraction=rng.uniform(0.0, 0.5),
            bottleneck_group=rng.choice([None, "transit"]),
            bottleneck_fraction=0.0,
        )
        config = MFCConfig(
            threshold_s=rng.uniform(0.05, 0.5),
            max_crowd=rng.randint(20, 150),
            crowd_step=rng.randint(1, 10),
            initial_crowd=rng.randint(1, 10),
            min_clients=rng.randint(1, 50),
            requests_per_client=rng.randint(1, 4),
            stagger_interval_s=rng.choice([None, 0.1]),
        )
        kinds = tuple(
            rng.sample(all_stages, rng.randint(1, len(all_stages)))
        ) or None
        spec = WorldSpec(
            scenario=SCENARIO_PRESETS[rng.choice(presets)](),
            fleet=fleet,
            config=config,
            seed=rng.randint(0, 2**31),
            stage_kinds=kinds,
            control_loss_prob=rng.uniform(0.0, 0.2),
            use_naive_scheduling=rng.random() < 0.5,
            bottleneck_capacity_bps=(
                rng.uniform(1e6, 1e8) if fleet.bottleneck_group else None
            ),
            background_rps=rng.choice([None, rng.uniform(0.0, 5.0)]),
            notes=f"draw {_}",
        )
        decoded = WorldSpec.from_json(spec.to_json())
        assert decoded.spec_hash == spec.spec_hash


# -- pluggable stages / planner ----------------------------------------------------


def test_default_spec_omits_stage_and_planner_fields():
    """Hash stability across releases: a spec not using the new knobs
    must encode to the exact pre-knob document (no new keys), so every
    existing spec hash, campaign job key and cached result stays
    valid."""
    spec = WorldSpec(
        scenario=SCENARIO_PRESETS["qtnp"](), fleet=SMALL_FLEET, config=SMALL_CONFIG
    )
    doc = json.loads(spec.to_json())
    assert "stages" not in doc
    assert "planner" not in doc
    assert "stages" not in codec.canonical(spec)


def test_pre_knob_document_still_decodes():
    """A JSON world written before the stages/planner fields existed
    decodes to the same world (and the same hash) today."""
    spec = WorldSpec(
        scenario=SCENARIO_PRESETS["qtnp"](), fleet=SMALL_FLEET, config=SMALL_CONFIG
    )
    doc = json.loads(spec.to_json())
    assert "stages" not in doc and "planner" not in doc  # i.e. pre-knob bytes
    decoded = codec.decode(doc)
    assert decoded.stages is None and decoded.planner is None
    assert decoded.spec_hash == spec.spec_hash


def test_stages_and_planner_roundtrip_with_stable_hash():
    from repro.core.epochs import BisectKnee, PlannerSpec

    spec = WorldSpec(
        scenario=SCENARIO_PRESETS["qtnp"](),
        fleet=SMALL_FLEET,
        config=SMALL_CONFIG,
        seed=4,
        stages=("Upload", "CacheBust", "ConnChurn"),
        planner=PlannerSpec(name="bisect", params={"growth_factor": 3.0}),
    )
    decoded = WorldSpec.from_json(spec.to_json())
    assert decoded.spec_hash == spec.spec_hash
    assert decoded.stages == ("Upload", "CacheBust", "ConnChurn")
    assert decoded.planner.name == "bisect"
    assert decoded.planner.params == {"growth_factor": 3.0}
    runner = decoded.build()
    assert [s.name for s in runner.stages] == ["Upload", "CacheBust", "ConnChurn"]
    planner = runner.coordinator.planner.make(SMALL_CONFIG)
    assert isinstance(planner, BisectKnee)
    assert planner.growth_factor == 3.0


def test_stages_and_planner_change_the_hash():
    from repro.core.epochs import PlannerSpec

    base = WorldSpec(scenario=qtnp_server(), seed=1)
    assert (
        WorldSpec(scenario=qtnp_server(), seed=1, stages=("Base",)).spec_hash
        != base.spec_hash
    )
    assert (
        WorldSpec(
            scenario=qtnp_server(), seed=1, planner=PlannerSpec(name="geometric")
        ).spec_hash
        != base.spec_hash
    )


def test_explicit_default_planner_folds_to_none():
    """`--planner linear` is byte-identical to the default, so it must
    hash (and cache) identically: the spec normalizes an explicit
    default-linear PlannerSpec away."""
    from repro.core.epochs import PlannerSpec

    base = WorldSpec(scenario=qtnp_server(), seed=1)
    explicit = WorldSpec(
        scenario=qtnp_server(), seed=1, planner=PlannerSpec(name="linear")
    )
    assert explicit.planner is None
    assert explicit.spec_hash == base.spec_hash
    # a parameterized linear planner is NOT the default (unknown params
    # are rejected at validation, but the hash must still distinguish)
    kept = WorldSpec(
        scenario=qtnp_server(),
        seed=1,
        planner=PlannerSpec(name="geometric", params={"factor": 1.5}),
    )
    assert kept.planner is not None


def test_new_stage_world_runs_and_infers():
    from repro.core.inference import infer_constraints

    spec = WorldSpec(
        scenario=SCENARIO_PRESETS["qtnp"](),
        fleet=SMALL_FLEET,
        config=SMALL_CONFIG,
        seed=2,
        stages=("ConnChurn",),
    )
    result = spec.build().run()
    assert "ConnChurn" in result.stages
    report = infer_constraints(result)
    assert "connection handling (accept/FD)" in report.summary()
    # intrusiveness accounting counts every churn connection: 4 per
    # base measurement and 4 per commanded crowd slot
    stage = result.stage("ConnChurn")
    expected = 4 * (result.live_clients + sum(e.crowd_size for e in stage.epochs))
    assert stage.total_requests == expected


def test_stage_kinds_and_stages_are_mutually_exclusive():
    spec = WorldSpec(
        scenario=qtnp_server(),
        stage_kinds=(StageKind.BASE,),
        stages=("Upload",),
    )
    with pytest.raises(ValueError, match="not both"):
        spec.build()


def test_unknown_stage_name_rejected_at_validation():
    spec = WorldSpec(scenario=qtnp_server(), stages=("Warp",))
    with pytest.raises(ValueError, match="unknown probe stage"):
        spec.build()


def test_unknown_planner_rejected_at_validation():
    from repro.core.epochs import PlannerSpec

    spec = WorldSpec(scenario=qtnp_server(), planner=PlannerSpec(name="oracle"))
    with pytest.raises(ValueError, match="unknown planner"):
        spec.build()


def test_synthetic_world_rejects_named_stages_but_takes_planner():
    from repro.core.epochs import BisectKnee, PlannerSpec

    rejected = WorldSpec(
        synthetic=SyntheticSpec(
            model="linear", params={"seconds_per_request": 0.01}
        ),
        fleet=lan_fleet(5),
        stages=("Base",),
    )
    with pytest.raises(ValueError, match="stages"):
        rejected.build()
    accepted = WorldSpec(
        synthetic=SyntheticSpec(
            model="step", params={"threshold": 10, "low_s": 0.0, "high_s": 0.5}
        ),
        fleet=lan_fleet(15),
        config=MFCConfig(min_clients=1, max_crowd=15, threshold_s=0.1),
        planner=PlannerSpec(name="bisect"),
        seed=5,
    )
    runner = accepted.build()
    assert isinstance(
        runner.coordinator.planner.make(accepted.config), BisectKnee
    )
    result = runner.run()
    assert result.stage(StageKind.BASE.value).stopping_crowd_size is not None


# -- identity semantics -----------------------------------------------------------


def test_hash_ignores_cosmetic_fields():
    spec = WorldSpec(scenario=qtnp_server(), notes="a")
    relabeled = WorldSpec(scenario=qtnp_server(), notes="b")
    assert spec.spec_hash == relabeled.spec_hash


def test_hash_tracks_execution_parameters():
    base = WorldSpec(scenario=qtnp_server(), seed=1)
    assert base.spec_hash != WorldSpec(scenario=qtnp_server(), seed=2).spec_hash
    assert (
        base.spec_hash
        != WorldSpec(
            scenario=qtnp_server(), seed=1, config=MFCConfig(max_crowd=45)
        ).spec_hash
    )
    assert (
        base.spec_hash
        != WorldSpec(
            scenario=qtnp_server(), seed=1, stage_kinds=(StageKind.BASE,)
        ).spec_hash
    )


def test_runner_build_is_a_worldspec_consumer():
    """The historical entry point and the spec path are the same world."""
    direct = MFCRunner.build(
        qtnp_server(),
        fleet_spec=SMALL_FLEET,
        config=SMALL_CONFIG,
        stage_kinds=[StageKind.BASE],
        seed=11,
    )
    assert direct.world_spec is not None
    via_spec = direct.world_spec.build()
    assert fingerprint(via_spec.run()) == fingerprint(direct.run())


# -- synthetic worlds -------------------------------------------------------------


def test_synthetic_world_roundtrip_and_run():
    spec = WorldSpec(
        synthetic=SyntheticSpec(
            model="step", params={"threshold": 10, "low_s": 0.0, "high_s": 0.5}
        ),
        fleet=lan_fleet(15),
        config=MFCConfig(min_clients=1, max_crowd=15, threshold_s=0.1),
        seed=5,
    )
    decoded = WorldSpec.from_json(spec.to_json())
    assert decoded.spec_hash == spec.spec_hash
    result = decoded.build().run()
    stage = result.stage(StageKind.BASE.value)
    # the step model's cliff sits inside the sweep: the stage stops
    assert stage.stopping_crowd_size is not None
    assert fingerprint(result) == fingerprint(spec.build().run())


def test_synthetic_registry_names_all_shipped_models():
    assert {"linear", "exponential", "step", "transient-busy"} <= set(
        SYNTHETIC_MODELS
    )
    assert set(FLEET_PRESETS) >= {"planetlab", "lan"}


def test_synthetic_spec_rejects_unknown_model():
    spec = WorldSpec(
        synthetic=SyntheticSpec(model="quadratic"), fleet=lan_fleet(5)
    )
    with pytest.raises(ValueError, match="unknown synthetic model"):
        spec.build()


# -- validation -------------------------------------------------------------------


def test_world_needs_exactly_one_server_side():
    with pytest.raises(ValueError, match="exactly one"):
        WorldSpec().build()
    with pytest.raises(ValueError, match="exactly one"):
        WorldSpec(
            scenario=qtnp_server(), synthetic=SyntheticSpec(model="linear")
        ).build()


def test_synthetic_world_rejects_scenario_only_knobs():
    spec = WorldSpec(
        synthetic=SyntheticSpec(model="linear", params={"seconds_per_request": 0.01}),
        monitor_interval_s=1.0,
    )
    with pytest.raises(ValueError, match="monitor_interval_s"):
        spec.build()


def test_from_json_rejects_non_world_documents():
    with pytest.raises(ValueError, match="WorldSpec"):
        WorldSpec.from_json(codec.dumps(qtnp_server()))


def test_decode_rejects_unknown_tags():
    with pytest.raises(ValueError, match="unknown spec dataclass"):
        codec.decode({"__dc__": "Exploit"})
    with pytest.raises(ValueError, match="unknown spec enum"):
        codec.decode({"__enum__": "Mystery", "value": 1})


def test_decode_rejects_typoed_field_names():
    """A hand-edited document with a misspelled field must fail loudly
    instead of silently running a different world."""
    doc = json.loads(WorldSpec(scenario=qtnp_server(), seed=7).to_json())
    doc["sede"] = 9
    del doc["seed"]
    with pytest.raises(ValueError, match="unknown field.*sede"):
        codec.decode(doc)


def test_synthetic_world_rejects_fleet_bottleneck():
    """Synthetic topologies carry no shared bottleneck links, so a
    bottleneck-group fleet must be rejected up front (it would
    otherwise fail seed-dependently or silently drop the bottleneck)."""
    spec = WorldSpec(
        synthetic=SyntheticSpec(model="linear", params={"seconds_per_request": 0.01}),
        fleet=FleetSpec(
            n_clients=10, bottleneck_group="transit", bottleneck_fraction=0.5
        ),
    )
    with pytest.raises(ValueError, match="bottleneck_group"):
        spec.build()
